//! Figure 8 — accuracy vs retraining epochs for FaPIT and FalVolt at 30%
//! faulty PEs (the "FalVolt converges ~2x faster" claim).
//!
//! Prints both convergence histories once, then benchmarks one retraining
//! epoch of each strategy.

use criterion::{criterion_group, criterion_main, Criterion};
use falvolt::campaign::{Axis, Campaign};
use falvolt::experiment::{DatasetKind, ExperimentScale};
use falvolt::mitigation::{MitigationStrategy, Mitigator, RetrainConfig};
use falvolt_bench::{bench_context, pct};
use falvolt_systolic::{FaultMap, StuckAt};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut ctx = bench_context(DatasetKind::Mnist);
    let epochs = ExperimentScale::Tiny.retrain_epochs();
    // Historical seed mixer: the drawn chip matches the pre-campaign driver.
    let run = Campaign::new(&mut ctx)
        .axis(Axis::FaultRate(vec![0.30]))
        .axis(Axis::Mitigation(vec![
            MitigationStrategy::fapit(epochs),
            MitigationStrategy::falvolt(epochs),
        ]))
        .seed_mixer(falvolt::campaign::mixers::convergence)
        .run()
        .expect("figure 8 convergence");
    let fapit_history = &run.cells()[0].outcome().expect("FaPIT cell").history;
    let falvolt_history = &run.cells()[1].outcome().expect("FalVolt cell").history;
    println!(
        "\nFigure 8 — convergence at 30% faulty PEs ({}):",
        ctx.kind().label()
    );
    println!("  epoch |  FaPIT  | FalVolt");
    for (fapit, falvolt) in fapit_history.iter().zip(falvolt_history) {
        println!(
            "  {:>5} | {:>7} | {:>7}",
            fapit.epoch,
            pct(fapit.test_accuracy),
            pct(falvolt.test_accuracy)
        );
    }
    let target = run.baseline_accuracy() * 0.95;
    println!(
        "  epochs to 95% of baseline: FaPIT {:?}, FalVolt {:?}",
        falvolt::mitigation::epochs_to_reach(fapit_history, target),
        falvolt::mitigation::epochs_to_reach(falvolt_history, target)
    );

    // Kernel benchmark: one retraining epoch of each strategy.
    let systolic = *ctx.systolic_config();
    let mut rng = StdRng::seed_from_u64(8);
    let fault_map = FaultMap::random_with_rate(
        &systolic,
        0.30,
        systolic.accumulator_format().msb(),
        StuckAt::One,
        &mut rng,
    )
    .unwrap();
    let mitigator = Mitigator::new(ctx.classes(), RetrainConfig::quick());
    let train = ctx.train_batches().to_vec();
    let test = ctx.test_batches().to_vec();

    let mut group = c.benchmark_group("fig8/one_retraining_epoch");
    group.bench_function("fapit", |b| {
        b.iter(|| {
            ctx.restore_baseline().unwrap();
            let outcome = mitigator
                .run(
                    ctx.network_mut(),
                    &fault_map,
                    &train,
                    &test,
                    MitigationStrategy::fapit(1),
                )
                .unwrap();
            criterion::black_box(outcome.final_accuracy)
        })
    });
    group.bench_function("falvolt", |b| {
        b.iter(|| {
            ctx.restore_baseline().unwrap();
            let outcome = mitigator
                .run(
                    ctx.network_mut(),
                    &fault_map,
                    &train,
                    &test,
                    MitigationStrategy::falvolt(1),
                )
                .unwrap();
            criterion::black_box(outcome.final_accuracy)
        })
    });
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(5))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench
}
criterion_main!(benches);
