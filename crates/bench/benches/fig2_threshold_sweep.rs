//! Figure 2 — motivational study: retraining accuracy at fixed threshold
//! voltages under 30% / 60% faulty PEs.
//!
//! Prints the figure's series once, then benchmarks the underlying kernel
//! (one fixed-threshold retraining step on the pruned network).

use criterion::{criterion_group, criterion_main, Criterion};
use falvolt::campaign::{Axis, Campaign};
use falvolt::experiment::{DatasetKind, ExperimentScale};
use falvolt::mitigation::{MitigationStrategy, Mitigator, RetrainConfig};
use falvolt_bench::{bench_context, pct};
use falvolt_systolic::{FaultMap, StuckAt};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut ctx = bench_context(DatasetKind::Mnist);
    let epochs = ExperimentScale::Tiny.retrain_epochs();

    // Regenerate the figure series as a campaign plan (the historical seed
    // mixer keeps the drawn chips — and the series — identical to the
    // pre-campaign driver's recorded output).
    let run = Campaign::new(&mut ctx)
        .axis(Axis::FaultRate(vec![0.30, 0.60]))
        .axis(Axis::Threshold(vec![0.45, 0.55, 0.7, 1.0]))
        .retrain_epochs(epochs)
        .seed_mixer(falvolt::campaign::mixers::per_fault_rate)
        .run()
        .expect("figure 2 sweep");
    println!(
        "\nFigure 2 — fixed-threshold retraining ({}):",
        ctx.kind().label()
    );
    println!("  threshold | fault rate | accuracy");
    for cell in &run {
        println!(
            "  {:>9.2} | {:>9.0}% | {:>6}",
            cell.spec.threshold.unwrap_or(0.0),
            cell.spec.fault_rate.unwrap_or(0.0) * 100.0,
            pct(cell.accuracy)
        );
    }

    // Kernel benchmark: one full FaPIT mitigation pass (prune + short
    // retraining) at a fixed threshold.
    let systolic = *ctx.systolic_config();
    let mut rng = StdRng::seed_from_u64(1);
    let fault_map = FaultMap::random_with_rate(
        &systolic,
        0.30,
        systolic.accumulator_format().msb(),
        StuckAt::One,
        &mut rng,
    )
    .unwrap();
    let mitigator = Mitigator::new(ctx.classes(), RetrainConfig::quick());
    let train = ctx.train_batches().to_vec();
    let test = ctx.test_batches().to_vec();

    c.bench_function("fig2/fapit_one_epoch_fixed_threshold", |b| {
        b.iter(|| {
            ctx.restore_baseline().unwrap();
            let outcome = mitigator
                .run(
                    ctx.network_mut(),
                    &fault_map,
                    &train,
                    &test,
                    MitigationStrategy::FaPIT {
                        epochs: 1,
                        threshold: 0.7,
                    },
                )
                .unwrap();
            criterion::black_box(outcome.final_accuracy)
        })
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(5))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench
}
criterion_main!(benches);
