//! Figure 6 — per-layer threshold voltages learned by FalVolt at 10% / 30% /
//! 60% faulty PEs.
//!
//! Prints the learned thresholds once, then benchmarks the threshold-gradient
//! kernel (spiking-layer backward pass with a trainable threshold).

use criterion::{criterion_group, criterion_main, Criterion};
use falvolt::experiment::{mitigation_comparison, DatasetKind, ExperimentScale};
use falvolt_bench::bench_context;
use falvolt_snn::layers::{ForwardContext, Layer, Mode, SpikingLayer};
use falvolt_snn::neuron::NeuronConfig;
use falvolt_snn::FloatBackend;
use falvolt_tensor::Tensor;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut ctx = bench_context(DatasetKind::Mnist);
    let epochs = ExperimentScale::Tiny.retrain_epochs();
    let report =
        mitigation_comparison(&mut ctx, &[0.10, 0.30], epochs).expect("figure 6 comparison");
    println!(
        "\nFigure 6 — optimized threshold voltages ({}):",
        report.dataset
    );
    for row in report.rows.iter().filter(|r| r.strategy == "FalVolt") {
        let thresholds: Vec<String> = row
            .thresholds
            .iter()
            .map(|(name, v)| format!("{name}={v:.2}"))
            .collect();
        println!(
            "  {:>3.0}% faulty: {}",
            row.fault_rate * 100.0,
            thresholds.join(", ")
        );
    }

    // Kernel benchmark: forward + backward through a spiking layer with a
    // trainable threshold (the Eq. 4 gradient path).
    let backend = FloatBackend::new();
    let mut layer = SpikingLayer::new("bench_sn", NeuronConfig::falvolt_retraining());
    let input = Tensor::from_fn(&[16, 512], |i| (i % 11) as f32 * 0.2);
    let grad = Tensor::ones(&[16, 512]);
    c.bench_function("fig6/spiking_layer_threshold_gradient", |b| {
        b.iter(|| {
            layer.reset_state();
            let ctx = ForwardContext::new(Mode::Train, &backend);
            let spikes = layer.forward(&input, &ctx).unwrap();
            let grad_in = layer.backward(&grad).unwrap();
            criterion::black_box((spikes, grad_in))
        })
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench
}
criterion_main!(benches);
