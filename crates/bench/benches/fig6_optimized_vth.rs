//! Figure 6 — per-layer threshold voltages learned by FalVolt at 10% / 30% /
//! 60% faulty PEs.
//!
//! Prints the learned thresholds once, then benchmarks the threshold-gradient
//! kernel (spiking-layer backward pass with a trainable threshold).

use criterion::{criterion_group, criterion_main, Criterion};
use falvolt::campaign::{Axis, Campaign};
use falvolt::experiment::{DatasetKind, ExperimentScale};
use falvolt::mitigation::MitigationStrategy;
use falvolt_bench::bench_context;
use falvolt_snn::layers::{ForwardContext, Layer, Mode, SpikingLayer};
use falvolt_snn::neuron::NeuronConfig;
use falvolt_snn::FloatBackend;
use falvolt_tensor::Tensor;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut ctx = bench_context(DatasetKind::Mnist);
    let epochs = ExperimentScale::Tiny.retrain_epochs();
    // Historical seed mixer: the drawn chips match the pre-campaign driver.
    let run = Campaign::new(&mut ctx)
        .axis(Axis::FaultRate(vec![0.10, 0.30]))
        .axis(Axis::Mitigation(vec![MitigationStrategy::falvolt(epochs)]))
        .seed_mixer(falvolt::campaign::mixers::per_fault_rate_rotated)
        .run()
        .expect("figure 6 comparison");
    println!(
        "\nFigure 6 — optimized threshold voltages ({}):",
        ctx.kind().label()
    );
    for cell in &run {
        let outcome = cell.outcome().expect("retraining cell");
        let thresholds: Vec<String> = outcome
            .thresholds
            .iter()
            .map(|(name, v)| format!("{name}={v:.2}"))
            .collect();
        println!(
            "  {:>3.0}% faulty: {}",
            cell.spec.fault_rate.unwrap_or(0.0) * 100.0,
            thresholds.join(", ")
        );
    }

    // Kernel benchmark: forward + backward through a spiking layer with a
    // trainable threshold (the Eq. 4 gradient path).
    let backend = FloatBackend::new();
    let mut layer = SpikingLayer::new("bench_sn", NeuronConfig::falvolt_retraining());
    let input = Tensor::from_fn(&[16, 512], |i| (i % 11) as f32 * 0.2);
    let grad = Tensor::ones(&[16, 512]);
    c.bench_function("fig6/spiking_layer_threshold_gradient", |b| {
        b.iter(|| {
            layer.reset_state();
            let ctx = ForwardContext::new(Mode::Train, &backend);
            let spikes = layer.forward(&input, &ctx).unwrap();
            let grad_in = layer.backward(&grad).unwrap();
            criterion::black_box((spikes, grad_in))
        })
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench
}
criterion_main!(benches);
