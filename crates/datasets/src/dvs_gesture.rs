//! Synthetic DVS-Gesture-like event dataset.

use crate::dataset::{Dataset, DatasetConfig};
use falvolt_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An 11-class moving-pattern dataset standing in for DVS128 Gesture
/// (Amir et al., CVPR 2017).
///
/// Every sample is a `[T, 2, size, size]` tensor of ON/OFF events produced by
/// a simple moving shape; the class determines the *motion*, not the shape:
///
/// | class | motion                       |
/// |-------|------------------------------|
/// | 0..8  | translation along one of 8 compass directions |
/// | 8     | clockwise rotation           |
/// | 9     | counter-clockwise rotation   |
/// | 10    | in-place flicker             |
///
/// This mirrors what makes DVS Gesture hard for a faulty accelerator: the
/// label is carried by spatio-temporal structure rather than by a static
/// spatial pattern, so corrupted partial sums disrupt it more easily — the
/// paper observes exactly this (DVS Gesture is the most fault-sensitive of
/// the three datasets).
///
/// # Example
///
/// ```
/// use falvolt_datasets::{Dataset, DatasetConfig, SyntheticDvsGesture};
///
/// let config = DatasetConfig::tiny();
/// let data = SyntheticDvsGesture::generate(&config, 5);
/// assert_eq!(data.classes(), 11);
/// let (events, label) = data.sample(0);
/// assert_eq!(events.shape(), &[config.time_steps, 2, config.size, config.size]);
/// assert!(label < 11);
/// ```
#[derive(Debug, Clone)]
pub struct SyntheticDvsGesture {
    config: DatasetConfig,
    samples: Vec<Tensor>,
    labels: Vec<usize>,
}

impl SyntheticDvsGesture {
    /// Number of gesture classes (as in DVS128 Gesture).
    pub const CLASSES: usize = 11;

    /// Generates the dataset.
    pub fn generate(config: &DatasetConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut samples = Vec::with_capacity(Self::CLASSES * config.samples_per_class);
        let mut labels = Vec::with_capacity(samples.capacity());
        for class in 0..Self::CLASSES {
            for _ in 0..config.samples_per_class {
                samples.push(gesture_events(class, config, &mut rng));
                labels.push(class);
            }
        }
        Self {
            config: *config,
            samples,
            labels,
        }
    }

    /// Generates a `(train, test)` pair from two derived seeds.
    pub fn train_test(config: &DatasetConfig, seed: u64) -> (Self, Self) {
        (
            Self::generate(config, seed),
            Self::generate(config, seed.wrapping_add(0x9E37_79B9)),
        )
    }

    /// The generation configuration.
    pub fn config(&self) -> &DatasetConfig {
        &self.config
    }
}

impl Dataset for SyntheticDvsGesture {
    fn name(&self) -> &str {
        "synthetic-dvs-gesture"
    }

    fn len(&self) -> usize {
        self.samples.len()
    }

    fn classes(&self) -> usize {
        Self::CLASSES
    }

    fn sample(&self, index: usize) -> (Tensor, usize) {
        (self.samples[index].clone(), self.labels[index])
    }
}

/// Renders a filled square at a (possibly rotated) position.
fn render_frame(size: usize, cx: f32, cy: f32, half: f32, angle: f32) -> Vec<f32> {
    let mut frame = vec![0.0f32; size * size];
    let (sin, cos) = angle.sin_cos();
    for y in 0..size {
        for x in 0..size {
            // Rotate the pixel into the square's frame.
            let dx = x as f32 - cx;
            let dy = y as f32 - cy;
            let rx = cos * dx + sin * dy;
            let ry = -sin * dx + cos * dy;
            if rx.abs() <= half && ry.abs() <= half {
                frame[y * size + x] = 1.0;
            }
        }
    }
    frame
}

fn gesture_events(class: usize, config: &DatasetConfig, rng: &mut StdRng) -> Tensor {
    let size = config.size;
    let t_steps = config.time_steps;
    let mut events = Tensor::zeros(&[t_steps, 2, size, size]);
    let centre = size as f32 / 2.0;
    let half = size as f32 / 6.0;
    let radius = size as f32 / 4.0;
    // Small per-sample perturbations keep the class non-trivial.
    let phase: f32 = rng.gen_range(0.0..std::f32::consts::TAU);
    let speed_jitter: f32 = rng.gen_range(0.8..1.2);
    let start_offset: f32 = rng.gen_range(-1.0..1.0);

    let mut previous = vec![0.0f32; size * size];
    let data = events.data_mut();
    for t in 0..t_steps {
        let progress = t as f32 / t_steps as f32;
        let (cx, cy, angle) = match class {
            // Eight compass translations.
            0..=7 => {
                let dir = class as f32 * std::f32::consts::FRAC_PI_4;
                let travel = (progress - 0.5) * size as f32 * 0.5 * speed_jitter + start_offset;
                (
                    centre + dir.cos() * travel,
                    centre + dir.sin() * travel,
                    0.0,
                )
            }
            // Clockwise / counter-clockwise rotation around the centre.
            8 | 9 => {
                let sign = if class == 8 { 1.0 } else { -1.0 };
                let theta = phase + sign * progress * std::f32::consts::TAU * speed_jitter;
                (
                    centre + radius * theta.cos(),
                    centre + radius * theta.sin(),
                    theta,
                )
            }
            // In-place flicker: the square appears only on even steps.
            _ => {
                let visible = t % 2 == 0;
                if visible {
                    (centre + start_offset, centre, 0.0)
                } else {
                    (-(size as f32), -(size as f32), 0.0) // off screen
                }
            }
        };
        let current = render_frame(size, cx, cy, half, angle);
        for i in 0..size * size {
            let on = (current[i] > 0.5 && previous[i] <= 0.5) as u8;
            let off = (current[i] <= 0.5 && previous[i] > 0.5) as u8;
            let mut on_value = on as f32;
            let mut off_value = off as f32;
            // Sensor noise: spurious events.
            if rng.gen::<f32>() < config.noise * 0.2 {
                on_value = 1.0 - on_value;
            }
            if rng.gen::<f32>() < config.noise * 0.2 {
                off_value = 1.0 - off_value;
            }
            data[(t * 2) * size * size + i] = on_value;
            data[(t * 2 + 1) * size * size + i] = off_value;
        }
        previous = current;
    }
    events
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_eleven_balanced_classes() {
        let config = DatasetConfig::tiny();
        let data = SyntheticDvsGesture::generate(&config, 1);
        assert_eq!(data.classes(), 11);
        assert_eq!(data.len(), 11 * config.samples_per_class);
        assert_eq!(data.name(), "synthetic-dvs-gesture");
        let mut counts = [0usize; 11];
        for i in 0..data.len() {
            let (x, y) = data.sample(i);
            assert_eq!(x.shape(), &[config.time_steps, 2, config.size, config.size]);
            assert!(x.data().iter().all(|&v| v == 0.0 || v == 1.0));
            counts[y] += 1;
        }
        assert!(counts.iter().all(|&c| c == config.samples_per_class));
    }

    #[test]
    fn motion_classes_produce_events_in_every_later_frame() {
        let config = DatasetConfig::default_experiment().with_samples_per_class(1);
        let data = SyntheticDvsGesture::generate(&config, 2);
        // Class 0 (translation): the moving square must generate ON or OFF
        // events in most frames after the first.
        let (events, label) = data.sample(0);
        assert_eq!(label, 0);
        let frames_with_events = (1..config.time_steps)
            .filter(|&t| {
                let base = t * 2 * config.size * config.size;
                events.data()[base..base + 2 * config.size * config.size]
                    .iter()
                    .sum::<f32>()
                    > 0.0
            })
            .count();
        assert!(frames_with_events >= config.time_steps / 2);
    }

    #[test]
    fn different_motion_classes_differ_in_event_streams() {
        let config = DatasetConfig::default_experiment().with_samples_per_class(1);
        let data = SyntheticDvsGesture::generate(&config, 7);
        let (east, _) = data.sample(0); // class 0: translation east
        let (west, _) = data.sample(4); // class 4: translation west
        let diff: f32 = east
            .data()
            .iter()
            .zip(west.data())
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(
            diff > 10.0,
            "opposite translations must differ, diff {diff}"
        );
    }

    #[test]
    fn reproducible_per_seed() {
        let config = DatasetConfig::tiny();
        let a = SyntheticDvsGesture::generate(&config, 5);
        let b = SyntheticDvsGesture::generate(&config, 5);
        assert_eq!(a.sample(10).0, b.sample(10).0);
        let (train, test) = SyntheticDvsGesture::train_test(&config, 5);
        assert_ne!(train.sample(0).0, test.sample(0).0);
        assert_eq!(train.config(), &config);
    }

    #[test]
    fn flicker_class_alternates_activity() {
        let config = DatasetConfig::default_experiment()
            .with_samples_per_class(1)
            .with_time_steps(6);
        let data = SyntheticDvsGesture::generate(&config, 3);
        let (events, label) = data.sample(10 * config.samples_per_class);
        assert_eq!(label, 10);
        // The flicker class produces bursts of events on the on/off
        // transitions; total activity must be well above zero.
        assert!(events.data().iter().sum::<f32>() > 5.0);
    }
}
