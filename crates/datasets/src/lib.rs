//! # falvolt-datasets
//!
//! Synthetic stand-ins for the three datasets of the FalVolt evaluation:
//!
//! * [`SyntheticMnist`] — static single-channel digit-like images (MNIST
//!   substitute),
//! * [`SyntheticNMnist`] — saccade-style event versions of the same glyphs
//!   with ON/OFF polarity channels (N-MNIST substitute),
//! * [`SyntheticDvsGesture`] — 11 classes of moving/rotating patterns encoded
//!   as event frames (DVS128 Gesture substitute).
//!
//! The real datasets cannot be downloaded in this offline reproduction; the
//! synthetic ones preserve what the paper's experiments actually exercise:
//! a static pixel-intensity workload and two temporal event-stream workloads
//! with the same tensor shapes, enough class structure to reach a high
//! baseline accuracy, and enough intra-class variation that accuracy genuinely
//! degrades when the accelerator computes wrong sums. See `DESIGN.md` §3 for
//! the substitution rationale.
//!
//! # Example
//!
//! ```
//! use falvolt_datasets::{Dataset, DatasetConfig, SyntheticMnist};
//!
//! let config = DatasetConfig::tiny();
//! let train = SyntheticMnist::generate(&config, 1);
//! assert_eq!(train.classes(), 10);
//! let (image, label) = train.sample(0);
//! assert_eq!(image.shape(), &[1, config.size, config.size]);
//! assert!(label < 10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dataset;
mod dvs_gesture;
mod generator;
mod mnist;
mod nmnist;

pub use dataset::{to_batches, Dataset, DatasetConfig, LabeledBatch};
pub use dvs_gesture::SyntheticDvsGesture;
pub use generator::GlyphBank;
pub use mnist::SyntheticMnist;
pub use nmnist::SyntheticNMnist;
