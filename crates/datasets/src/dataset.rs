//! The dataset abstraction and batching utilities.

use falvolt_tensor::Tensor;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Generation parameters shared by all synthetic datasets.
///
/// # Example
///
/// ```
/// use falvolt_datasets::DatasetConfig;
///
/// let config = DatasetConfig::default_experiment();
/// assert_eq!(config.size, 16);
/// assert!(config.samples_per_class >= 10);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DatasetConfig {
    /// Height and width of the (square) frames.
    pub size: usize,
    /// Number of samples generated per class.
    pub samples_per_class: usize,
    /// Number of time steps for event datasets (ignored by static datasets).
    pub time_steps: usize,
    /// Probability of flipping a background/foreground pixel (label noise of
    /// the image itself, not of the label).
    pub noise: f32,
    /// Maximum absolute spatial jitter applied to each sample, in pixels.
    pub jitter: usize,
}

impl DatasetConfig {
    /// The configuration used by the reproduction experiments: 16x16 frames,
    /// 24 samples per class, mild noise.
    pub fn default_experiment() -> Self {
        Self {
            size: 16,
            samples_per_class: 24,
            time_steps: 6,
            noise: 0.05,
            jitter: 1,
        }
    }

    /// A very small configuration for unit tests.
    pub fn tiny() -> Self {
        Self {
            size: 8,
            samples_per_class: 4,
            time_steps: 3,
            noise: 0.02,
            jitter: 1,
        }
    }

    /// Builder-style override of the per-class sample count.
    pub fn with_samples_per_class(mut self, samples_per_class: usize) -> Self {
        self.samples_per_class = samples_per_class;
        self
    }

    /// Builder-style override of the frame size.
    pub fn with_size(mut self, size: usize) -> Self {
        self.size = size;
        self
    }

    /// Builder-style override of the time-step count.
    pub fn with_time_steps(mut self, time_steps: usize) -> Self {
        self.time_steps = time_steps;
        self
    }
}

impl Default for DatasetConfig {
    fn default() -> Self {
        Self::default_experiment()
    }
}

/// A labelled, in-memory dataset of tensors.
pub trait Dataset {
    /// Dataset name (used in reports).
    fn name(&self) -> &str;

    /// Number of samples.
    fn len(&self) -> usize;

    /// Returns `true` when the dataset holds no samples.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of classes.
    fn classes(&self) -> usize;

    /// Returns sample `index` as `(input, label)`. Static datasets return
    /// `[C, H, W]` inputs, event datasets `[T, C, H, W]`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    fn sample(&self, index: usize) -> (Tensor, usize);
}

/// One mini-batch of stacked inputs and labels.
#[derive(Debug, Clone, PartialEq)]
pub struct LabeledBatch {
    /// Stacked inputs: `[N, C, H, W]` for static data, `[N, T, C, H, W]` for
    /// event data.
    pub input: Tensor,
    /// One label per sample.
    pub labels: Vec<usize>,
}

impl LabeledBatch {
    /// Number of samples in the batch.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Returns `true` for an empty batch.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }
}

/// Stacks a dataset into shuffled mini-batches.
///
/// The final batch may be smaller than `batch_size`. Shuffling is driven by
/// `seed` so experiment runs are reproducible.
///
/// # Panics
///
/// Panics if `batch_size == 0`.
pub fn to_batches(dataset: &dyn Dataset, batch_size: usize, seed: u64) -> Vec<LabeledBatch> {
    assert!(batch_size > 0, "batch_size must be non-zero");
    let mut indices: Vec<usize> = (0..dataset.len()).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    indices.shuffle(&mut rng);
    let mut batches = Vec::new();
    for chunk in indices.chunks(batch_size) {
        let mut inputs = Vec::with_capacity(chunk.len());
        let mut labels = Vec::with_capacity(chunk.len());
        for &i in chunk {
            let (x, y) = dataset.sample(i);
            inputs.push(x);
            labels.push(y);
        }
        let input = Tensor::stack_axis0(&inputs).expect("samples of one dataset share a shape");
        batches.push(LabeledBatch { input, labels });
    }
    batches
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SyntheticMnist;

    #[test]
    fn config_builders() {
        let c = DatasetConfig::tiny()
            .with_samples_per_class(7)
            .with_size(12)
            .with_time_steps(5);
        assert_eq!(c.samples_per_class, 7);
        assert_eq!(c.size, 12);
        assert_eq!(c.time_steps, 5);
        assert_eq!(
            DatasetConfig::default(),
            DatasetConfig::default_experiment()
        );
    }

    #[test]
    fn batching_covers_every_sample_exactly_once() {
        let data = SyntheticMnist::generate(&DatasetConfig::tiny(), 3);
        let batches = to_batches(&data, 8, 1);
        let total: usize = batches.iter().map(LabeledBatch::len).sum();
        assert_eq!(total, data.len());
        assert!(batches.iter().all(|b| !b.is_empty()));
        // Shapes: [N, 1, 8, 8].
        assert_eq!(batches[0].input.shape()[1..], [1, 8, 8]);
    }

    #[test]
    fn batching_is_reproducible_per_seed() {
        let data = SyntheticMnist::generate(&DatasetConfig::tiny(), 3);
        let a = to_batches(&data, 4, 9);
        let b = to_batches(&data, 4, 9);
        assert_eq!(a.len(), b.len());
        assert_eq!(a[0].labels, b[0].labels);
        let c = to_batches(&data, 4, 10);
        // Different seed almost surely changes the first batch's labels.
        assert!(a[0].labels != c[0].labels || a[1].labels != c[1].labels);
    }

    #[test]
    #[should_panic(expected = "batch_size")]
    fn zero_batch_size_panics() {
        let data = SyntheticMnist::generate(&DatasetConfig::tiny(), 3);
        let _ = to_batches(&data, 0, 1);
    }
}
