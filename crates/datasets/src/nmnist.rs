//! Synthetic N-MNIST-like event dataset (saccade-style).

use crate::dataset::{Dataset, DatasetConfig};
use crate::generator::GlyphBank;
use falvolt_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An event-camera version of the digit glyphs: each sample is a
/// `[T, 2, size, size]` tensor of ON/OFF polarity events produced by sweeping
/// the glyph across the sensor in a small saccade, mirroring how the real
/// N-MNIST dataset was recorded (Orchard et al.).
///
/// # Example
///
/// ```
/// use falvolt_datasets::{Dataset, DatasetConfig, SyntheticNMnist};
///
/// let config = DatasetConfig::tiny();
/// let data = SyntheticNMnist::generate(&config, 3);
/// let (events, label) = data.sample(0);
/// assert_eq!(events.shape(), &[config.time_steps, 2, config.size, config.size]);
/// assert!(label < 10);
/// ```
#[derive(Debug, Clone)]
pub struct SyntheticNMnist {
    config: DatasetConfig,
    samples: Vec<Tensor>,
    labels: Vec<usize>,
}

impl SyntheticNMnist {
    /// Number of classes (digits 0-9).
    pub const CLASSES: usize = 10;

    /// Generates the dataset.
    pub fn generate(config: &DatasetConfig, seed: u64) -> Self {
        let bank = GlyphBank::new(Self::CLASSES, config.size);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut samples = Vec::with_capacity(Self::CLASSES * config.samples_per_class);
        let mut labels = Vec::with_capacity(samples.capacity());
        for class in 0..Self::CLASSES {
            for _ in 0..config.samples_per_class {
                let glyph = bank.variant(class, config.noise, config.jitter, &mut rng);
                samples.push(saccade_events(&glyph, config, &mut rng));
                labels.push(class);
            }
        }
        Self {
            config: *config,
            samples,
            labels,
        }
    }

    /// Generates a `(train, test)` pair from two derived seeds.
    pub fn train_test(config: &DatasetConfig, seed: u64) -> (Self, Self) {
        (
            Self::generate(config, seed),
            Self::generate(config, seed.wrapping_add(0x9E37_79B9)),
        )
    }

    /// The generation configuration.
    pub fn config(&self) -> &DatasetConfig {
        &self.config
    }
}

impl Dataset for SyntheticNMnist {
    fn name(&self) -> &str {
        "synthetic-nmnist"
    }

    fn len(&self) -> usize {
        self.samples.len()
    }

    fn classes(&self) -> usize {
        Self::CLASSES
    }

    fn sample(&self, index: usize) -> (Tensor, usize) {
        (self.samples[index].clone(), self.labels[index])
    }
}

/// Sweeps the glyph over a small triangular saccade trajectory and emits
/// ON events where pixels turn on between consecutive frames and OFF events
/// where they turn off.
fn saccade_events(glyph: &Tensor, config: &DatasetConfig, rng: &mut StdRng) -> Tensor {
    let size = config.size;
    let t_steps = config.time_steps;
    let mut events = Tensor::zeros(&[t_steps, 2, size, size]);
    let mut previous = vec![0.0f32; size * size];
    // Saccade offsets cycle through a small triangle, like the three saccades
    // of the real N-MNIST recording procedure.
    let trajectory = [(0isize, 0isize), (1, 0), (1, 1), (0, 1), (-1, 0), (0, -1)];
    let phase = rng.gen_range(0..trajectory.len());
    {
        let data = events.data_mut();
        for t in 0..t_steps {
            let (dx, dy) = trajectory[(phase + t) % trajectory.len()];
            // Shift the glyph by (dx, dy).
            let mut current = vec![0.0f32; size * size];
            for y in 0..size as isize {
                for x in 0..size as isize {
                    let sy = y - dy;
                    let sx = x - dx;
                    if sy >= 0 && sx >= 0 && (sy as usize) < size && (sx as usize) < size {
                        current[(y as usize) * size + x as usize] =
                            glyph.data()[(sy as usize) * size + sx as usize];
                    }
                }
            }
            for i in 0..size * size {
                let on = (current[i] > 0.5 && previous[i] <= 0.5) as u8;
                let off = (current[i] <= 0.5 && previous[i] > 0.5) as u8;
                // Channel 0 = ON events, channel 1 = OFF events.
                data[((t * 2) * size * size) + i] = on as f32;
                data[((t * 2 + 1) * size * size) + i] = off as f32;
            }
            previous = current;
        }
    }
    events
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_and_binary_events() {
        let config = DatasetConfig::tiny();
        let data = SyntheticNMnist::generate(&config, 1);
        assert_eq!(data.len(), 10 * config.samples_per_class);
        assert_eq!(data.classes(), 10);
        assert_eq!(data.name(), "synthetic-nmnist");
        let (events, _) = data.sample(0);
        assert_eq!(
            events.shape(),
            &[config.time_steps, 2, config.size, config.size]
        );
        assert!(events.data().iter().all(|&v| v == 0.0 || v == 1.0));
    }

    #[test]
    fn first_frame_contains_the_glyph_onset() {
        // At t = 0 the previous frame is empty, so every glyph pixel emits an
        // ON event and there are no OFF events.
        let config = DatasetConfig::tiny();
        let data = SyntheticNMnist::generate(&config, 2);
        let (events, _) = data.sample(0);
        let size = config.size;
        let on_count: f32 = (0..size * size).map(|i| events.data()[i]).sum();
        let off_count: f32 = (0..size * size)
            .map(|i| events.data()[size * size + i])
            .sum();
        assert!(on_count > 0.0, "the onset frame must contain ON events");
        assert_eq!(off_count, 0.0, "nothing can turn off before it was on");
    }

    #[test]
    fn later_frames_contain_motion_events() {
        let config = DatasetConfig::tiny();
        let data = SyntheticNMnist::generate(&config, 4);
        let (events, _) = data.sample(3);
        let per_frame: Vec<f32> = (0..config.time_steps)
            .map(|t| {
                let base = t * 2 * config.size * config.size;
                events.data()[base..base + 2 * config.size * config.size]
                    .iter()
                    .sum()
            })
            .collect();
        // The saccade keeps producing events after the onset (frames where the
        // glyph moves produce ON+OFF edges).
        assert!(per_frame[1..].iter().any(|&c| c > 0.0));
    }

    #[test]
    fn reproducibility_and_split() {
        let config = DatasetConfig::tiny();
        let a = SyntheticNMnist::generate(&config, 9);
        let b = SyntheticNMnist::generate(&config, 9);
        assert_eq!(a.sample(5).0, b.sample(5).0);
        let (train, test) = SyntheticNMnist::train_test(&config, 9);
        assert_eq!(train.len(), test.len());
        assert_eq!(train.config(), &config);
        assert_ne!(train.sample(0).0, test.sample(0).0);
    }
}
