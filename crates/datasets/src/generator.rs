//! Procedural glyph generation shared by the synthetic datasets.

use falvolt_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A bank of per-class "glyph" templates: binary 2-D patterns that play the
/// role of digit shapes (MNIST/N-MNIST) or base poses (DVS Gesture).
///
/// Templates are generated deterministically from `(class, size)` so that two
/// datasets built with the same parameters agree on what each class looks
/// like, while different classes get visually distinct strokes.
///
/// # Example
///
/// ```
/// use falvolt_datasets::GlyphBank;
///
/// let bank = GlyphBank::new(10, 16);
/// let glyph = bank.template(3);
/// assert_eq!(glyph.shape(), &[16, 16]);
/// // Templates are binary.
/// assert!(glyph.data().iter().all(|&v| v == 0.0 || v == 1.0));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GlyphBank {
    classes: usize,
    size: usize,
    templates: Vec<Tensor>,
}

impl GlyphBank {
    /// Builds templates for `classes` classes on a `size x size` grid.
    ///
    /// # Panics
    ///
    /// Panics if `size < 4` (templates need room for strokes).
    pub fn new(classes: usize, size: usize) -> Self {
        assert!(size >= 4, "glyph templates need at least a 4x4 grid");
        let templates = (0..classes)
            .map(|c| Self::build_template(c, size))
            .collect();
        Self {
            classes,
            size,
            templates,
        }
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Grid size.
    pub fn size(&self) -> usize {
        self.size
    }

    /// The binary template of a class.
    ///
    /// # Panics
    ///
    /// Panics if `class >= self.classes()`.
    pub fn template(&self, class: usize) -> &Tensor {
        &self.templates[class]
    }

    /// A noisy, jittered variant of a class template: the glyph is shifted by
    /// up to `jitter` pixels in each direction and each pixel is flipped with
    /// probability `noise`.
    pub fn variant(&self, class: usize, noise: f32, jitter: usize, rng: &mut StdRng) -> Tensor {
        let template = &self.templates[class];
        let size = self.size as isize;
        let dx = if jitter > 0 {
            rng.gen_range(-(jitter as isize)..=jitter as isize)
        } else {
            0
        };
        let dy = if jitter > 0 {
            rng.gen_range(-(jitter as isize)..=jitter as isize)
        } else {
            0
        };
        let mut out = Tensor::zeros(&[self.size, self.size]);
        {
            let src = template.data();
            let dst = out.data_mut();
            for y in 0..size {
                for x in 0..size {
                    let sy = y - dy;
                    let sx = x - dx;
                    let value = if sy >= 0 && sx >= 0 && sy < size && sx < size {
                        src[(sy * size + sx) as usize]
                    } else {
                        0.0
                    };
                    dst[(y * size + x) as usize] = value;
                }
            }
            for v in dst.iter_mut() {
                if rng.gen::<f32>() < noise {
                    *v = 1.0 - *v;
                }
            }
        }
        out
    }

    /// Deterministic per-class template construction: a few strokes (bars,
    /// boxes, diagonals) placed by a class-seeded RNG.
    fn build_template(class: usize, size: usize) -> Tensor {
        let mut rng = StdRng::seed_from_u64(0x5EED_0000 + class as u64);
        let mut grid = Tensor::zeros(&[size, size]);
        let strokes = 3 + class % 3;
        for stroke in 0..strokes {
            let kind = (class + stroke * 7 + rng.gen_range(0..2)) % 4;
            let data = grid.data_mut();
            match kind {
                // Horizontal bar.
                0 => {
                    let row = rng.gen_range(1..size - 1);
                    let from = rng.gen_range(0..size / 2);
                    let to = rng.gen_range(size / 2..size);
                    for x in from..to {
                        data[row * size + x] = 1.0;
                        data[(row + 1).min(size - 1) * size + x] = 1.0;
                    }
                }
                // Vertical bar.
                1 => {
                    let col = rng.gen_range(1..size - 1);
                    let from = rng.gen_range(0..size / 2);
                    let to = rng.gen_range(size / 2..size);
                    for y in from..to {
                        data[y * size + col] = 1.0;
                        data[y * size + (col + 1).min(size - 1)] = 1.0;
                    }
                }
                // Diagonal stroke.
                2 => {
                    let offset = rng.gen_range(0..size / 2) as isize - (size / 4) as isize;
                    for i in 0..size {
                        let x = (i as isize + offset).clamp(0, size as isize - 1) as usize;
                        data[i * size + x] = 1.0;
                    }
                }
                // Filled box.
                _ => {
                    let y0 = rng.gen_range(0..size - 3);
                    let x0 = rng.gen_range(0..size - 3);
                    for y in y0..y0 + 3 {
                        for x in x0..x0 + 3 {
                            data[y * size + x] = 1.0;
                        }
                    }
                }
            }
        }
        grid
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn templates_are_deterministic_and_distinct() {
        let a = GlyphBank::new(10, 16);
        let b = GlyphBank::new(10, 16);
        for c in 0..10 {
            assert_eq!(a.template(c), b.template(c));
        }
        // Classes should differ pairwise in at least a few pixels.
        for c1 in 0..10 {
            for c2 in (c1 + 1)..10 {
                let diff: f32 = a
                    .template(c1)
                    .data()
                    .iter()
                    .zip(a.template(c2).data())
                    .map(|(x, y)| (x - y).abs())
                    .sum();
                assert!(
                    diff >= 4.0,
                    "classes {c1} and {c2} are too similar ({diff})"
                );
            }
        }
        assert_eq!(a.classes(), 10);
        assert_eq!(a.size(), 16);
    }

    #[test]
    fn templates_have_reasonable_ink_coverage() {
        let bank = GlyphBank::new(11, 16);
        for c in 0..11 {
            let ink: f32 = bank.template(c).data().iter().sum();
            let frac = ink / 256.0;
            assert!(
                (0.05..0.6).contains(&frac),
                "class {c} ink coverage {frac} outside sane range"
            );
        }
    }

    #[test]
    fn variants_resemble_their_template() {
        let bank = GlyphBank::new(10, 16);
        let mut rng = StdRng::seed_from_u64(3);
        for c in 0..10 {
            let v = bank.variant(c, 0.02, 1, &mut rng);
            // Count pixels that agree with the clean template (allowing the
            // shift to misalign some of them).
            let same: f32 = v
                .data()
                .iter()
                .zip(bank.template(c).data())
                .map(|(a, b)| if (a - b).abs() < 0.5 { 1.0 } else { 0.0 })
                .sum();
            assert!(same / 256.0 > 0.6, "variant of class {c} diverged too far");
        }
    }

    #[test]
    fn zero_noise_zero_jitter_reproduces_template() {
        let bank = GlyphBank::new(4, 8);
        let mut rng = StdRng::seed_from_u64(1);
        let v = bank.variant(2, 0.0, 0, &mut rng);
        assert_eq!(&v, bank.template(2));
    }

    #[test]
    #[should_panic(expected = "4x4")]
    fn tiny_grids_are_rejected() {
        let _ = GlyphBank::new(2, 3);
    }
}
