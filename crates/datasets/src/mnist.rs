//! Synthetic MNIST-like static image dataset.

use crate::dataset::{Dataset, DatasetConfig};
use crate::generator::GlyphBank;
use falvolt_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A static, single-channel, 10-class digit-like dataset: the MNIST
/// substitute (see `DESIGN.md` §3).
///
/// Each sample is a `[1, size, size]` image with intensities in `[0, 1]`:
/// a jittered, noisy variant of the class glyph.
///
/// # Example
///
/// ```
/// use falvolt_datasets::{Dataset, DatasetConfig, SyntheticMnist};
///
/// let data = SyntheticMnist::generate(&DatasetConfig::tiny(), 7);
/// assert_eq!(data.classes(), 10);
/// assert_eq!(data.len(), 10 * DatasetConfig::tiny().samples_per_class);
/// ```
#[derive(Debug, Clone)]
pub struct SyntheticMnist {
    config: DatasetConfig,
    samples: Vec<Tensor>,
    labels: Vec<usize>,
}

impl SyntheticMnist {
    /// Number of classes (digits 0-9).
    pub const CLASSES: usize = 10;

    /// Generates the dataset with a seed controlling jitter and noise.
    pub fn generate(config: &DatasetConfig, seed: u64) -> Self {
        let bank = GlyphBank::new(Self::CLASSES, config.size);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut samples = Vec::with_capacity(Self::CLASSES * config.samples_per_class);
        let mut labels = Vec::with_capacity(samples.capacity());
        for class in 0..Self::CLASSES {
            for _ in 0..config.samples_per_class {
                let glyph = bank.variant(class, config.noise, config.jitter, &mut rng);
                let image = glyph
                    .into_reshaped(&[1, config.size, config.size])
                    .expect("glyph has size*size elements");
                samples.push(image);
                labels.push(class);
            }
        }
        Self {
            config: *config,
            samples,
            labels,
        }
    }

    /// Generates a `(train, test)` pair from two derived seeds.
    pub fn train_test(config: &DatasetConfig, seed: u64) -> (Self, Self) {
        (
            Self::generate(config, seed),
            Self::generate(config, seed.wrapping_add(0x9E37_79B9)),
        )
    }

    /// The generation configuration.
    pub fn config(&self) -> &DatasetConfig {
        &self.config
    }
}

impl Dataset for SyntheticMnist {
    fn name(&self) -> &str {
        "synthetic-mnist"
    }

    fn len(&self) -> usize {
        self.samples.len()
    }

    fn classes(&self) -> usize {
        Self::CLASSES
    }

    fn sample(&self, index: usize) -> (Tensor, usize) {
        (self.samples[index].clone(), self.labels[index])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_balanced_classes_with_correct_shapes() {
        let config = DatasetConfig::tiny();
        let data = SyntheticMnist::generate(&config, 1);
        assert_eq!(data.len(), 10 * config.samples_per_class);
        assert_eq!(data.name(), "synthetic-mnist");
        assert!(!data.is_empty());
        let mut counts = [0usize; 10];
        for i in 0..data.len() {
            let (x, y) = data.sample(i);
            assert_eq!(x.shape(), &[1, config.size, config.size]);
            assert!(x.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
            counts[y] += 1;
        }
        assert!(counts.iter().all(|&c| c == config.samples_per_class));
    }

    #[test]
    fn same_seed_reproduces_different_seed_differs() {
        let config = DatasetConfig::tiny();
        let a = SyntheticMnist::generate(&config, 5);
        let b = SyntheticMnist::generate(&config, 5);
        let c = SyntheticMnist::generate(&config, 6);
        assert_eq!(a.sample(0).0, b.sample(0).0);
        assert_ne!(a.sample(0).0, c.sample(0).0);
    }

    #[test]
    fn train_test_split_differs_but_shares_structure() {
        let config = DatasetConfig::tiny();
        let (train, test) = SyntheticMnist::train_test(&config, 11);
        assert_eq!(train.len(), test.len());
        assert_ne!(train.sample(0).0, test.sample(0).0);
        assert_eq!(train.sample(0).1, test.sample(0).1);
        assert_eq!(train.config(), &config);
    }

    #[test]
    fn samples_within_a_class_are_mutually_closer_than_across_classes() {
        // A crude separability check: the mean intra-class L1 distance should
        // be smaller than the mean inter-class distance.
        let config = DatasetConfig::tiny();
        let data = SyntheticMnist::generate(&config, 3);
        let dist = |a: &Tensor, b: &Tensor| -> f32 {
            a.data()
                .iter()
                .zip(b.data())
                .map(|(x, y)| (x - y).abs())
                .sum()
        };
        let (x0a, _) = data.sample(0);
        let (x0b, _) = data.sample(1);
        let (x1a, _) = data.sample(config.samples_per_class);
        let intra = dist(&x0a, &x0b);
        let inter = dist(&x0a, &x1a);
        assert!(
            intra < inter,
            "intra-class distance {intra} should be below inter-class {inter}"
        );
    }
}
