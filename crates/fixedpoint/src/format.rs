//! Q-format descriptor for signed two's-complement fixed-point words.

use crate::{FixedPointError, Result};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A signed two's-complement fixed-point format with `total_bits` bits of
/// which `frac_bits` are fractional.
///
/// The most significant bit (`total_bits - 1`) is the sign bit; the value of a
/// raw word `r` is `r / 2^frac_bits`.
///
/// # Example
///
/// ```
/// use falvolt_fixedpoint::QFormat;
///
/// # fn main() -> Result<(), falvolt_fixedpoint::FixedPointError> {
/// let q = QFormat::new(16, 8)?;
/// assert_eq!(q.msb(), 15);
/// assert_eq!(q.resolution(), 1.0 / 256.0);
/// assert!(q.max_value() > 127.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct QFormat {
    total_bits: u32,
    frac_bits: u32,
}

impl QFormat {
    /// Creates a format with `total_bits` word width and `frac_bits`
    /// fractional bits.
    ///
    /// # Errors
    ///
    /// Returns [`FixedPointError::InvalidWordWidth`] for widths outside
    /// `2..=32` and [`FixedPointError::InvalidFractionalBits`] when the
    /// fractional part does not leave room for the sign bit.
    pub fn new(total_bits: u32, frac_bits: u32) -> Result<Self> {
        if !(2..=32).contains(&total_bits) {
            return Err(FixedPointError::InvalidWordWidth { total_bits });
        }
        if frac_bits >= total_bits {
            return Err(FixedPointError::InvalidFractionalBits {
                total_bits,
                frac_bits,
            });
        }
        Ok(Self {
            total_bits,
            frac_bits,
        })
    }

    /// The accumulator format used by the paper's 32-bit-weight PEs in this
    /// reproduction: a 16-bit word with 8 fractional bits (`Q7.8`), whose bit
    /// indices 0..=15 match the x-axis of the paper's Figure 5a.
    pub fn accumulator_default() -> Self {
        Self {
            total_bits: 16,
            frac_bits: 8,
        }
    }

    /// A wide 32-bit accumulator (`Q15.16`) for experiments that need more
    /// head-room.
    pub fn wide_accumulator() -> Self {
        Self {
            total_bits: 32,
            frac_bits: 16,
        }
    }

    /// Word width in bits.
    pub fn total_bits(&self) -> u32 {
        self.total_bits
    }

    /// Number of fractional bits.
    pub fn frac_bits(&self) -> u32 {
        self.frac_bits
    }

    /// Number of integer bits (excluding the sign bit).
    pub fn int_bits(&self) -> u32 {
        self.total_bits - self.frac_bits - 1
    }

    /// Index of the most significant (sign) bit.
    pub fn msb(&self) -> u32 {
        self.total_bits - 1
    }

    /// The smallest representable increment.
    pub fn resolution(&self) -> f32 {
        1.0 / (1i64 << self.frac_bits) as f32
    }

    /// Largest representable value.
    pub fn max_value(&self) -> f32 {
        self.max_raw() as f32 * self.resolution()
    }

    /// Smallest (most negative) representable value.
    pub fn min_value(&self) -> f32 {
        self.min_raw() as f32 * self.resolution()
    }

    /// Largest representable raw word.
    pub fn max_raw(&self) -> i32 {
        ((1i64 << (self.total_bits - 1)) - 1) as i32
    }

    /// Smallest representable raw word.
    pub fn min_raw(&self) -> i32 {
        (-(1i64 << (self.total_bits - 1))) as i32
    }

    /// Checks that `bit` addresses a bit inside the word.
    ///
    /// # Errors
    ///
    /// Returns [`FixedPointError::BitOutOfRange`] otherwise.
    pub fn check_bit(&self, bit: u32) -> Result<()> {
        if bit >= self.total_bits {
            return Err(FixedPointError::BitOutOfRange {
                bit,
                total_bits: self.total_bits,
            });
        }
        Ok(())
    }

    /// Quantizes an `f32` to the nearest representable raw word, saturating at
    /// the format bounds.
    pub fn quantize(&self, value: f32) -> i32 {
        let scaled = (value * (1i64 << self.frac_bits) as f32).round();
        let clamped = scaled.clamp(self.min_raw() as f32, self.max_raw() as f32);
        clamped as i32
    }

    /// Converts a raw word back to `f32`.
    pub fn dequantize(&self, raw: i32) -> f32 {
        raw as f32 * self.resolution()
    }

    /// Reinterprets the low `total_bits` of `raw` as a signed value in this
    /// format (sign-extending from the format's sign bit).
    pub fn wrap_raw(&self, raw: i64) -> i32 {
        let mask = if self.total_bits == 32 {
            u32::MAX as i64
        } else {
            (1i64 << self.total_bits) - 1
        };
        let low = raw & mask;
        let sign_bit = 1i64 << (self.total_bits - 1);
        let value = if low & sign_bit != 0 {
            low - (1i64 << self.total_bits)
        } else {
            low
        };
        value as i32
    }
}

impl Default for QFormat {
    fn default() -> Self {
        Self::accumulator_default()
    }
}

impl fmt::Display for QFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Q{}.{}", self.int_bits(), self.frac_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates_ranges() {
        assert!(QFormat::new(16, 8).is_ok());
        assert!(QFormat::new(1, 0).is_err());
        assert!(QFormat::new(33, 8).is_err());
        assert!(QFormat::new(16, 16).is_err());
    }

    #[test]
    fn default_matches_paper_axis() {
        let q = QFormat::accumulator_default();
        assert_eq!(q.total_bits(), 16);
        assert_eq!(q.msb(), 15);
        assert_eq!(q.to_string(), "Q7.8");
    }

    #[test]
    fn ranges_and_resolution() {
        let q = QFormat::new(16, 8).unwrap();
        assert_eq!(q.max_raw(), 32767);
        assert_eq!(q.min_raw(), -32768);
        assert!((q.max_value() - 127.996).abs() < 0.01);
        assert!((q.min_value() + 128.0).abs() < 1e-6);
        assert_eq!(q.resolution(), 1.0 / 256.0);
        assert_eq!(q.int_bits(), 7);
    }

    #[test]
    fn quantize_rounds_and_saturates() {
        let q = QFormat::new(16, 8).unwrap();
        assert_eq!(q.quantize(1.0), 256);
        assert_eq!(q.quantize(-1.5), -384);
        assert_eq!(q.quantize(1000.0), q.max_raw());
        assert_eq!(q.quantize(-1000.0), q.min_raw());
        assert!((q.dequantize(q.quantize(3.125)) - 3.125).abs() < 1e-6);
    }

    #[test]
    fn wrap_raw_sign_extends() {
        let q = QFormat::new(8, 0).unwrap();
        assert_eq!(q.wrap_raw(0x7f), 127);
        assert_eq!(q.wrap_raw(0x80), -128);
        assert_eq!(q.wrap_raw(0x1ff), -1);
        let q32 = QFormat::new(32, 16).unwrap();
        assert_eq!(q32.wrap_raw(-1), -1);
    }

    #[test]
    fn check_bit_bounds() {
        let q = QFormat::new(16, 8).unwrap();
        assert!(q.check_bit(15).is_ok());
        assert!(q.check_bit(16).is_err());
    }

    #[test]
    fn bit32_format_does_not_overflow() {
        let q = QFormat::wide_accumulator();
        assert_eq!(q.max_raw(), i32::MAX);
        assert_eq!(q.min_raw(), i32::MIN);
        assert_eq!(q.msb(), 31);
    }
}
