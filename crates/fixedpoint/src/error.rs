//! Error type for fixed-point configuration.

use std::fmt;

/// Error returned when constructing an invalid fixed-point format or when a
/// bit index is out of range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FixedPointError {
    /// The requested word width is unsupported (must be 2..=32 bits).
    InvalidWordWidth {
        /// Requested total number of bits.
        total_bits: u32,
    },
    /// The fractional part does not fit into the word.
    InvalidFractionalBits {
        /// Requested total number of bits.
        total_bits: u32,
        /// Requested fractional bits.
        frac_bits: u32,
    },
    /// A bit index referenced a bit outside the word.
    BitOutOfRange {
        /// The offending bit index.
        bit: u32,
        /// The word width.
        total_bits: u32,
    },
}

impl fmt::Display for FixedPointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FixedPointError::InvalidWordWidth { total_bits } => {
                write!(
                    f,
                    "unsupported fixed-point word width {total_bits} (must be 2..=32)"
                )
            }
            FixedPointError::InvalidFractionalBits {
                total_bits,
                frac_bits,
            } => write!(
                f,
                "fractional bits {frac_bits} must be smaller than the word width {total_bits}"
            ),
            FixedPointError::BitOutOfRange { bit, total_bits } => {
                write!(f, "bit {bit} out of range for a {total_bits}-bit word")
            }
        }
    }
}

impl std::error::Error for FixedPointError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_offending_values() {
        assert!(FixedPointError::InvalidWordWidth { total_bits: 64 }
            .to_string()
            .contains("64"));
        assert!(FixedPointError::BitOutOfRange {
            bit: 20,
            total_bits: 16
        }
        .to_string()
        .contains("20"));
    }
}
