//! # falvolt-fixedpoint
//!
//! Bit-accurate Q-format fixed-point arithmetic for the systolic-array
//! accumulator fault model.
//!
//! The FalVolt paper injects stuck-at faults into *individual output bits of
//! the accumulator* inside each processing element (PE). Reproducing that
//! requires knowing exactly which bit holds what: this crate provides a
//! [`QFormat`] describing a signed two's-complement fixed-point encoding and a
//! [`Fixed`] value type with saturating arithmetic and bit-manipulation
//! helpers used by the fault injector.
//!
//! # Example
//!
//! ```
//! use falvolt_fixedpoint::{Fixed, QFormat};
//!
//! # fn main() -> Result<(), falvolt_fixedpoint::FixedPointError> {
//! let q = QFormat::new(16, 8)?;            // 16-bit word, 8 fractional bits
//! let x = Fixed::from_f32(1.5, q);
//! let y = Fixed::from_f32(2.25, q);
//! let sum = x.saturating_add(y);
//! assert!((sum.to_f32() - 3.75).abs() < 1e-6);
//!
//! // A stuck-at-1 fault in the most significant (sign) bit flips the value
//! // negative — the catastrophic case the paper observes.
//! let faulty = sum.with_bit_set(q.msb());
//! assert!(faulty.to_f32() < 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod fixed;
mod format;

pub use error::FixedPointError;
pub use fixed::Fixed;
pub use format::QFormat;

/// Convenience result alias used across the crate.
pub type Result<T> = std::result::Result<T, FixedPointError>;
