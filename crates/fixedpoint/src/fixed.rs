//! A fixed-point value paired with its format.

use crate::QFormat;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A signed fixed-point value in a given [`QFormat`].
///
/// All arithmetic saturates at the format bounds, which is how the PE
/// accumulators in the systolic simulator behave (hardware accumulators either
/// saturate or wrap; the paper's accuracy collapse comes from stuck bits, not
/// from overflow policy, so saturation is chosen for numerical stability).
///
/// # Example
///
/// ```
/// use falvolt_fixedpoint::{Fixed, QFormat};
///
/// # fn main() -> Result<(), falvolt_fixedpoint::FixedPointError> {
/// let q = QFormat::new(16, 8)?;
/// let a = Fixed::from_f32(100.0, q);
/// let b = Fixed::from_f32(100.0, q);
/// // Saturates instead of wrapping around to a negative value.
/// assert!((a.saturating_add(b).to_f32() - q.max_value()).abs() < 1e-3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Fixed {
    raw: i32,
    format: QFormat,
}

impl Fixed {
    /// Creates a fixed-point value by quantizing `value` (saturating).
    pub fn from_f32(value: f32, format: QFormat) -> Self {
        Self {
            raw: format.quantize(value),
            format,
        }
    }

    /// Creates a fixed-point value from a raw word, clamping it into range.
    pub fn from_raw(raw: i32, format: QFormat) -> Self {
        Self {
            raw: raw.clamp(format.min_raw(), format.max_raw()),
            format,
        }
    }

    /// Zero in the given format.
    pub fn zero(format: QFormat) -> Self {
        Self { raw: 0, format }
    }

    /// The raw two's-complement word.
    pub fn raw(&self) -> i32 {
        self.raw
    }

    /// The format of this value.
    pub fn format(&self) -> QFormat {
        self.format
    }

    /// Converts back to `f32`.
    pub fn to_f32(&self) -> f32 {
        self.format.dequantize(self.raw)
    }

    /// Saturating addition.
    pub fn saturating_add(self, other: Self) -> Self {
        let sum = self.raw as i64 + other.raw as i64;
        let clamped = sum.clamp(self.format.min_raw() as i64, self.format.max_raw() as i64);
        Self {
            raw: clamped as i32,
            format: self.format,
        }
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: Self) -> Self {
        let diff = self.raw as i64 - other.raw as i64;
        let clamped = diff.clamp(self.format.min_raw() as i64, self.format.max_raw() as i64);
        Self {
            raw: clamped as i32,
            format: self.format,
        }
    }

    /// Returns the value with bit `bit` forced to `1` (stuck-at-1 fault).
    ///
    /// # Panics
    ///
    /// Panics if `bit` is outside the word; fault maps validate bits at
    /// construction so this indicates a programming error.
    pub fn with_bit_set(self, bit: u32) -> Self {
        self.format
            .check_bit(bit)
            .expect("bit index validated by the fault map");
        let low = self.low_bits() | (1u32 << bit);
        self.with_low_bits(low)
    }

    /// Returns the value with bit `bit` forced to `0` (stuck-at-0 fault).
    ///
    /// # Panics
    ///
    /// Panics if `bit` is outside the word (see [`Fixed::with_bit_set`]).
    pub fn with_bit_cleared(self, bit: u32) -> Self {
        self.format
            .check_bit(bit)
            .expect("bit index validated by the fault map");
        let low = self.low_bits() & !(1u32 << bit);
        self.with_low_bits(low)
    }

    /// Applies an AND mask followed by an OR mask to the word — the composed
    /// effect of a PE's set of stuck-at faults.
    pub fn with_masks(self, and_mask: u32, or_mask: u32) -> Self {
        let low = (self.low_bits() & and_mask) | or_mask;
        self.with_low_bits(low)
    }

    /// Returns bit `bit` of the word.
    ///
    /// # Panics
    ///
    /// Panics if `bit` is outside the word.
    pub fn bit(&self, bit: u32) -> bool {
        self.format
            .check_bit(bit)
            .expect("bit index validated by caller");
        self.low_bits() & (1u32 << bit) != 0
    }

    fn low_bits(&self) -> u32 {
        let mask = if self.format.total_bits() == 32 {
            u32::MAX
        } else {
            (1u32 << self.format.total_bits()) - 1
        };
        (self.raw as u32) & mask
    }

    fn with_low_bits(self, low: u32) -> Self {
        Self {
            raw: self.format.wrap_raw(low as i64),
            format: self.format,
        }
    }
}

impl fmt::Display for Fixed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.to_f32(), self.format)
    }
}

impl fmt::Binary for Fixed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let width = self.format.total_bits() as usize;
        write!(f, "{:0width$b}", self.low_bits(), width = width)
    }
}

impl fmt::LowerHex for Fixed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:x}", self.low_bits())
    }
}

impl fmt::UpperHex for Fixed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:X}", self.low_bits())
    }
}

impl fmt::Octal for Fixed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:o}", self.low_bits())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q16() -> QFormat {
        QFormat::new(16, 8).unwrap()
    }

    #[test]
    fn f32_roundtrip_within_resolution() {
        let q = q16();
        for v in [-100.0f32, -1.25, 0.0, 0.5, 3.175, 120.0] {
            let fx = Fixed::from_f32(v, q);
            assert!((fx.to_f32() - v).abs() <= q.resolution());
        }
    }

    #[test]
    fn addition_saturates() {
        let q = q16();
        let a = Fixed::from_f32(120.0, q);
        let sum = a.saturating_add(a);
        assert_eq!(sum.raw(), q.max_raw());
        let b = Fixed::from_f32(-120.0, q);
        let diff = b.saturating_add(b);
        assert_eq!(diff.raw(), q.min_raw());
        let c = Fixed::from_f32(-120.0, q).saturating_sub(Fixed::from_f32(120.0, q));
        assert_eq!(c.raw(), q.min_raw());
    }

    #[test]
    fn stuck_at_one_in_msb_makes_positive_values_negative() {
        let q = q16();
        let x = Fixed::from_f32(5.0, q);
        let faulty = x.with_bit_set(q.msb());
        assert!(faulty.to_f32() < 0.0);
        // Stuck-at-0 in the MSB makes negative values positive.
        let y = Fixed::from_f32(-5.0, q);
        let fy = y.with_bit_cleared(q.msb());
        assert!(fy.to_f32() >= 0.0);
    }

    #[test]
    fn lsb_faults_have_bounded_effect() {
        let q = q16();
        let x = Fixed::from_f32(5.0, q);
        let faulty = x.with_bit_set(0);
        assert!((faulty.to_f32() - x.to_f32()).abs() <= q.resolution());
    }

    #[test]
    fn masks_compose_set_and_clear() {
        let q = q16();
        let x = Fixed::from_f32(1.0, q); // raw 0x0100
        let and_mask = !(1u32 << 8); // clear bit 8
        let or_mask = 1u32 << 0; // set bit 0
        let f = x.with_masks(and_mask, or_mask);
        assert!(!f.bit(8));
        assert!(f.bit(0));
    }

    #[test]
    fn bit_query_matches_binary_format() {
        let q = q16();
        let x = Fixed::from_f32(1.0, q);
        assert!(x.bit(8));
        assert!(!x.bit(0));
        assert_eq!(format!("{x:b}").len(), 16);
        assert!(!format!("{x:x}").is_empty());
        assert!(!format!("{x:X}").is_empty());
        assert!(!format!("{x:o}").is_empty());
    }

    #[test]
    fn from_raw_clamps() {
        let q = QFormat::new(8, 0).unwrap();
        let f = Fixed::from_raw(1000, q);
        assert_eq!(f.raw(), 127);
        let f = Fixed::from_raw(-1000, q);
        assert_eq!(f.raw(), -128);
    }

    #[test]
    fn display_is_informative() {
        let q = q16();
        let x = Fixed::from_f32(2.5, q);
        assert!(x.to_string().contains("2.5"));
        assert!(x.to_string().contains("Q7.8"));
    }

    #[test]
    fn works_with_32_bit_words() {
        let q = QFormat::wide_accumulator();
        let x = Fixed::from_f32(3.75, q);
        assert!((x.to_f32() - 3.75).abs() < 1e-4);
        let f = x.with_bit_set(q.msb());
        assert!(f.to_f32() < 0.0);
        let g = f.with_bit_cleared(q.msb());
        assert!((g.to_f32() - 3.75).abs() < 1e-4);
    }
}
