//! Property-based tests for fixed-point arithmetic and fault-bit semantics.

use falvolt_fixedpoint::{Fixed, QFormat};
use proptest::prelude::*;

fn formats() -> impl Strategy<Value = QFormat> {
    prop_oneof![
        Just(QFormat::new(16, 8).unwrap()),
        Just(QFormat::new(12, 4).unwrap()),
        Just(QFormat::new(32, 16).unwrap()),
        Just(QFormat::new(8, 2).unwrap()),
    ]
}

proptest! {
    #[test]
    fn quantize_dequantize_error_bounded(q in formats(), v in -60.0f32..60.0) {
        let clamped = v.clamp(q.min_value(), q.max_value());
        let fx = Fixed::from_f32(clamped, q);
        prop_assert!((fx.to_f32() - clamped).abs() <= q.resolution());
    }

    #[test]
    fn saturating_add_stays_in_range(q in formats(), a in -200.0f32..200.0, b in -200.0f32..200.0) {
        let fa = Fixed::from_f32(a, q);
        let fb = Fixed::from_f32(b, q);
        let sum = fa.saturating_add(fb);
        prop_assert!(sum.raw() <= q.max_raw());
        prop_assert!(sum.raw() >= q.min_raw());
        let diff = fa.saturating_sub(fb);
        prop_assert!(diff.raw() <= q.max_raw());
        prop_assert!(diff.raw() >= q.min_raw());
    }

    #[test]
    fn stuck_bits_are_idempotent(q in formats(), v in -50.0f32..50.0, bit_frac in 0.0f32..1.0) {
        let bit = ((q.total_bits() - 1) as f32 * bit_frac) as u32;
        let fx = Fixed::from_f32(v, q);
        let set_once = fx.with_bit_set(bit);
        prop_assert_eq!(set_once.with_bit_set(bit), set_once);
        let cleared_once = fx.with_bit_cleared(bit);
        prop_assert_eq!(cleared_once.with_bit_cleared(bit), cleared_once);
        // A stuck bit really is stuck at the requested polarity.
        prop_assert!(set_once.bit(bit));
        prop_assert!(!cleared_once.bit(bit));
    }

    #[test]
    fn msb_fault_error_dominates_lsb_fault_error(q in formats(), v in 1.0f32..40.0) {
        let fx = Fixed::from_f32(v, q);
        let msb_err = (fx.with_bit_set(q.msb()).to_f32() - fx.to_f32()).abs();
        let lsb_err = (fx.with_bit_set(0).to_f32() - fx.to_f32()).abs();
        prop_assert!(msb_err >= lsb_err);
    }

    #[test]
    fn masks_match_individual_bit_operations(q in formats(), v in -50.0f32..50.0) {
        let fx = Fixed::from_f32(v, q);
        let set_bit = q.msb() - 1;
        let clear_bit = 1u32;
        let via_masks = fx.with_masks(!(1u32 << clear_bit), 1u32 << set_bit);
        let via_ops = fx.with_bit_cleared(clear_bit).with_bit_set(set_bit);
        prop_assert_eq!(via_masks, via_ops);
    }

    #[test]
    fn identity_masks_are_noop(q in formats(), v in -50.0f32..50.0) {
        let fx = Fixed::from_f32(v, q);
        prop_assert_eq!(fx.with_masks(u32::MAX, 0), fx);
    }
}
