//! Error type for the systolic-array simulator.

use falvolt_fixedpoint::FixedPointError;
use falvolt_tensor::TensorError;
use std::fmt;

/// Error returned by the systolic-array simulator.
#[derive(Debug, Clone, PartialEq)]
pub enum SystolicError {
    /// The grid dimensions are invalid (zero rows or columns).
    InvalidGrid {
        /// Requested number of rows.
        rows: usize,
        /// Requested number of columns.
        cols: usize,
    },
    /// A PE coordinate lies outside the grid.
    PeOutOfRange {
        /// The offending row.
        row: usize,
        /// The offending column.
        col: usize,
        /// Grid rows.
        rows: usize,
        /// Grid columns.
        cols: usize,
    },
    /// More faulty PEs were requested than the grid contains.
    TooManyFaultyPes {
        /// Number of faulty PEs requested.
        requested: usize,
        /// Number of PEs available.
        available: usize,
    },
    /// A fault rate outside `[0, 1]` was requested.
    InvalidFaultRate {
        /// The offending rate.
        rate: f64,
    },
    /// An internal invariant broke. Returned instead of panicking so a
    /// campaign worker survives the scenario and the error reaches the
    /// caller with context.
    Internal {
        /// Which invariant failed.
        what: &'static str,
    },
    /// An underlying fixed-point error (e.g. a fault bit outside the word).
    FixedPoint(FixedPointError),
    /// An underlying tensor error (e.g. a shape mismatch in the executor).
    Tensor(TensorError),
}

impl fmt::Display for SystolicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SystolicError::InvalidGrid { rows, cols } => {
                write!(
                    f,
                    "invalid systolic grid {rows}x{cols}: both dimensions must be non-zero"
                )
            }
            SystolicError::PeOutOfRange {
                row,
                col,
                rows,
                cols,
            } => write!(f, "PE ({row}, {col}) outside the {rows}x{cols} grid"),
            SystolicError::TooManyFaultyPes {
                requested,
                available,
            } => write!(
                f,
                "requested {requested} faulty PEs but the grid only has {available}"
            ),
            SystolicError::InvalidFaultRate { rate } => {
                write!(f, "fault rate {rate} outside the valid range [0, 1]")
            }
            SystolicError::Internal { what } => {
                write!(f, "internal invariant violated: {what}")
            }
            SystolicError::FixedPoint(e) => write!(f, "fixed-point error: {e}"),
            SystolicError::Tensor(e) => write!(f, "tensor error: {e}"),
        }
    }
}

impl std::error::Error for SystolicError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SystolicError::FixedPoint(e) => Some(e),
            SystolicError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FixedPointError> for SystolicError {
    fn from(e: FixedPointError) -> Self {
        SystolicError::FixedPoint(e)
    }
}

impl From<TensorError> for SystolicError {
    fn from(e: TensorError) -> Self {
        SystolicError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert!(SystolicError::InvalidGrid { rows: 0, cols: 4 }
            .to_string()
            .contains("0x4"));
        assert!(SystolicError::TooManyFaultyPes {
            requested: 20,
            available: 16
        }
        .to_string()
        .contains("20"));
        assert!(SystolicError::InvalidFaultRate { rate: 1.5 }
            .to_string()
            .contains("1.5"));
    }

    #[test]
    fn conversions_wrap_sources() {
        let e: SystolicError = TensorError::RankMismatch {
            expected: 2,
            actual: 3,
        }
        .into();
        assert!(matches!(e, SystolicError::Tensor(_)));
        assert!(std::error::Error::source(&e).is_some());
        let e: SystolicError = FixedPointError::InvalidWordWidth { total_bits: 1 }.into();
        assert!(matches!(e, SystolicError::FixedPoint(_)));
    }
}
