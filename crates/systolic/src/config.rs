//! Configuration of the systolic-array accelerator.

use crate::{Result, SystolicError};
use falvolt_fixedpoint::QFormat;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Configuration of an `rows x cols` weight-stationary systolic-array SNN
/// accelerator.
///
/// The paper's reference design is a 256x256 grid whose PEs accumulate 32-bit
/// weights under 1-bit spikes; this reproduction defaults to a 16-bit
/// accumulator word (`Q7.8`) whose bit indices match the x-axis of the
/// paper's Figure 5a, and lets experiments scale the grid from 4x4 up to
/// 256x256 (Figure 5c).
///
/// # Example
///
/// ```
/// use falvolt_systolic::SystolicConfig;
///
/// # fn main() -> Result<(), falvolt_systolic::SystolicError> {
/// let config = SystolicConfig::paper_256x256();
/// assert_eq!(config.pe_count(), 65_536);
/// let small = SystolicConfig::new(8, 8)?;
/// assert_eq!(small.pe_count(), 64);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SystolicConfig {
    rows: usize,
    cols: usize,
    accumulator_format: QFormat,
}

impl SystolicConfig {
    /// Creates a configuration with the default accumulator format.
    ///
    /// # Errors
    ///
    /// Returns [`SystolicError::InvalidGrid`] when either dimension is zero.
    pub fn new(rows: usize, cols: usize) -> Result<Self> {
        Self::with_accumulator(rows, cols, QFormat::accumulator_default())
    }

    /// Creates a configuration with an explicit accumulator format.
    ///
    /// # Errors
    ///
    /// Returns [`SystolicError::InvalidGrid`] when either dimension is zero.
    pub fn with_accumulator(rows: usize, cols: usize, accumulator_format: QFormat) -> Result<Self> {
        if rows == 0 || cols == 0 {
            return Err(SystolicError::InvalidGrid { rows, cols });
        }
        Ok(Self {
            rows,
            cols,
            accumulator_format,
        })
    }

    /// The 256x256 grid evaluated throughout the paper.
    pub fn paper_256x256() -> Self {
        Self {
            rows: 256,
            cols: 256,
            accumulator_format: QFormat::accumulator_default(),
        }
    }

    /// A square `n x n` grid, as used in the array-size sweep (Figure 5c).
    ///
    /// # Errors
    ///
    /// Returns [`SystolicError::InvalidGrid`] when `n == 0`.
    pub fn square(n: usize) -> Result<Self> {
        Self::new(n, n)
    }

    /// Number of PE rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of PE columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of PEs in the grid.
    pub fn pe_count(&self) -> usize {
        self.rows * self.cols
    }

    /// Fixed-point format of the PE accumulator output.
    pub fn accumulator_format(&self) -> QFormat {
        self.accumulator_format
    }

    /// Converts a faulty-PE count into the fault rate the paper reports
    /// (fraction of all PEs that are faulty).
    pub fn fault_rate_for(&self, faulty_pes: usize) -> f64 {
        faulty_pes as f64 / self.pe_count() as f64
    }

    /// Converts a fault rate into a number of faulty PEs (rounding to the
    /// nearest integer).
    ///
    /// # Errors
    ///
    /// Returns [`SystolicError::InvalidFaultRate`] for rates outside `[0, 1]`.
    pub fn faulty_pes_for_rate(&self, rate: f64) -> Result<usize> {
        if !(0.0..=1.0).contains(&rate) || !rate.is_finite() {
            return Err(SystolicError::InvalidFaultRate { rate });
        }
        Ok((rate * self.pe_count() as f64).round() as usize)
    }
}

impl Default for SystolicConfig {
    /// Returns the paper's 256x256 configuration.
    fn default() -> Self {
        Self::paper_256x256()
    }
}

impl fmt::Display for SystolicConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}x{} systolicSNN ({} accumulator)",
            self.rows, self.cols, self.accumulator_format
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates_grid() {
        assert!(SystolicConfig::new(8, 8).is_ok());
        assert!(matches!(
            SystolicConfig::new(0, 8),
            Err(SystolicError::InvalidGrid { .. })
        ));
        assert!(SystolicConfig::square(0).is_err());
    }

    #[test]
    fn paper_preset_matches_evaluation_setup() {
        let c = SystolicConfig::paper_256x256();
        assert_eq!(c.rows(), 256);
        assert_eq!(c.cols(), 256);
        assert_eq!(c.pe_count(), 65_536);
        assert_eq!(c, SystolicConfig::default());
    }

    #[test]
    fn fault_rate_conversions_roundtrip() {
        let c = SystolicConfig::new(16, 16).unwrap();
        assert_eq!(c.faulty_pes_for_rate(0.25).unwrap(), 64);
        assert!((c.fault_rate_for(64) - 0.25).abs() < 1e-9);
        assert!(c.faulty_pes_for_rate(-0.1).is_err());
        assert!(c.faulty_pes_for_rate(1.1).is_err());
        assert!(c.faulty_pes_for_rate(f64::NAN).is_err());
    }

    #[test]
    fn paper_8_faulty_pes_is_low_rate() {
        // The paper highlights that 8 faulty PEs is only 0.012% of a 256x256
        // array yet collapses accuracy.
        let c = SystolicConfig::paper_256x256();
        let rate = c.fault_rate_for(8);
        assert!((rate - 0.000_122).abs() < 1e-5);
    }

    #[test]
    fn display_includes_grid_and_format() {
        let c = SystolicConfig::new(4, 8).unwrap();
        let s = c.to_string();
        assert!(s.contains("4x8"));
        assert!(s.contains("Q7.8"));
    }
}
