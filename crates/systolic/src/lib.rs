//! # falvolt-systolic
//!
//! Architectural simulator of a weight-stationary systolic-array SNN
//! accelerator (a *systolicSNN*) with permanent stuck-at fault injection.
//!
//! The FalVolt paper evaluates a 256x256 grid of processing elements (PEs)
//! described in VHDL. This crate reproduces the pieces of that hardware the
//! reliability study actually depends on:
//!
//! * the [`SystolicConfig`] describing the grid and the accumulator word
//!   format ([`config`]),
//! * individual [`ProcessingElement`]s that accumulate weights under binary
//!   spikes, count output spikes and optionally corrupt their accumulator
//!   output with stuck-at faults or bypass themselves entirely ([`pe`]),
//! * [`Fault`]s, [`FaultMap`]s and random fault-map generators matching the
//!   paper's methodology (faults injected into accumulator output bits,
//!   fault maps from post-fabrication test) ([`fault`], [`fault_map`]),
//! * the weight-stationary [`WeightMapping`] that decides which weights of a
//!   layer land on which PE — and therefore which weights a faulty PE
//!   corrupts ([`mapping`]),
//! * a [`SystolicExecutor`] that runs im2col-lowered matrix products through
//!   the faulty array ([`executor`]), and a cycle-style [`SystolicArray`]
//!   used to validate the executor against a structural simulation
//!   ([`mod@array`]).
//!
//! # Example
//!
//! ```
//! use falvolt_systolic::{FaultMap, StuckAt, SystolicConfig, SystolicExecutor};
//! use falvolt_tensor::Tensor;
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let config = SystolicConfig::new(8, 8)?;
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! // 4 faulty PEs with stuck-at-1 faults in the accumulator MSB.
//! let fault_map = FaultMap::random_faulty_pes(
//!     &config, 4, config.accumulator_format().msb(), StuckAt::One, &mut rng)?;
//!
//! let executor = SystolicExecutor::new(config, fault_map);
//! let spikes = Tensor::ones(&[2, 8]);
//! let weights = Tensor::full(&[8, 8], 0.05);
//! let faulty = executor.matmul(&spikes, &weights)?;
//! let clean = spikes.matmul(&weights)?;
//! assert_eq!(faulty.shape(), clean.shape());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;

pub mod array;
pub mod config;
pub mod executor;
pub mod fault;
pub mod fault_map;
pub mod mapping;
pub mod pe;
pub mod product_cache;
pub mod shared_store;

pub use array::SystolicArray;
pub use config::SystolicConfig;
pub use error::SystolicError;
pub use executor::{FoldPlan, ScenarioMatrices, SystolicExecutor};
pub use fault::{Fault, PeCoord, StuckAt};
pub use fault_map::{FaultMap, PeMasks};
pub use mapping::WeightMapping;
pub use pe::ProcessingElement;
pub use product_cache::{CacheDecision, ProductCache};
pub use shared_store::{SharedStore, StoreDecision};

/// Convenience result alias used across the crate.
pub type Result<T> = std::result::Result<T, SystolicError>;
