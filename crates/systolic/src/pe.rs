//! The processing element (PE) of the systolicSNN.
//!
//! A PE stores one pre-loaded weight (weight-stationary dataflow), adds it to
//! the partial sum flowing down its column whenever the 1-bit spike input is
//! asserted, counts the spikes it has seen, and forwards the (possibly
//! fault-corrupted) partial sum. The bypass multiplexer of the paper's
//! Figure 3b lets a faulty PE forward the incoming partial sum untouched.

use crate::fault_map::PeMasks;
use falvolt_fixedpoint::{Fixed, QFormat};
use serde::{Deserialize, Serialize};

/// One processing element of the weight-stationary systolic array.
///
/// # Example
///
/// ```
/// use falvolt_fixedpoint::{Fixed, QFormat};
/// use falvolt_systolic::ProcessingElement;
///
/// let format = QFormat::accumulator_default();
/// let mut pe = ProcessingElement::new(format);
/// pe.load_weight(0.5);
/// let presum = Fixed::zero(format);
/// let out = pe.process(presum, true);
/// assert!((out.to_f32() - 0.5).abs() < 1e-2);
/// assert_eq!(pe.spike_count(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProcessingElement {
    format: QFormat,
    weight: Fixed,
    masks: PeMasks,
    bypassed: bool,
    spike_count: u64,
}

impl ProcessingElement {
    /// Creates a fault-free PE with a zero weight.
    pub fn new(format: QFormat) -> Self {
        Self {
            format,
            weight: Fixed::zero(format),
            masks: PeMasks::identity(),
            bypassed: false,
            spike_count: 0,
        }
    }

    /// Pre-stores the weight for the current layer tile (quantized to the
    /// accumulator format).
    pub fn load_weight(&mut self, weight: f32) {
        self.weight = Fixed::from_f32(weight, self.format);
    }

    /// The currently loaded weight (after quantization).
    pub fn weight(&self) -> Fixed {
        self.weight
    }

    /// Installs the stuck-at fault masks of this PE.
    pub fn set_masks(&mut self, masks: PeMasks) {
        self.masks = masks;
    }

    /// The stuck-at fault masks of this PE.
    pub fn masks(&self) -> PeMasks {
        self.masks
    }

    /// Returns `true` when the PE has at least one stuck-at fault.
    pub fn is_faulty(&self) -> bool {
        !self.masks.is_identity()
    }

    /// Enables or disables the bypass multiplexer (Figure 3b of the paper).
    pub fn set_bypassed(&mut self, bypassed: bool) {
        self.bypassed = bypassed;
    }

    /// Returns `true` when the bypass path is enabled.
    pub fn is_bypassed(&self) -> bool {
        self.bypassed
    }

    /// Number of spikes this PE has processed since the last reset (the
    /// paper's internal counter used during inference).
    pub fn spike_count(&self) -> u64 {
        self.spike_count
    }

    /// Resets the internal spike counter.
    pub fn reset_spike_count(&mut self) {
        self.spike_count = 0;
    }

    /// Processes one cycle: adds the stored weight to `presum` when `spike`
    /// is asserted, applies the PE's stuck-at faults to the accumulator
    /// output, and returns the partial sum forwarded to the next PE in the
    /// column.
    ///
    /// When the bypass path is enabled the incoming partial sum is forwarded
    /// untouched (the faulty accumulator is skipped), which is exactly the
    /// hardware analogue of pruning the weights mapped to this PE.
    pub fn process(&mut self, presum: Fixed, spike: bool) -> Fixed {
        if spike {
            self.spike_count += 1;
        }
        if self.bypassed {
            return presum;
        }
        let accumulated = if spike {
            presum.saturating_add(self.weight)
        } else {
            presum
        };
        self.masks.apply(accumulated)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Fault, FaultMap, PeCoord, StuckAt, SystolicConfig};

    fn format() -> QFormat {
        QFormat::accumulator_default()
    }

    #[test]
    fn accumulates_only_under_spikes() {
        let mut pe = ProcessingElement::new(format());
        pe.load_weight(1.25);
        let presum = Fixed::from_f32(2.0, format());
        let with_spike = pe.process(presum, true);
        assert!((with_spike.to_f32() - 3.25).abs() < 1e-2);
        let without_spike = pe.process(presum, false);
        assert!((without_spike.to_f32() - 2.0).abs() < 1e-2);
        assert_eq!(pe.spike_count(), 1);
    }

    #[test]
    fn counts_and_resets_spikes() {
        let mut pe = ProcessingElement::new(format());
        pe.load_weight(0.1);
        let z = Fixed::zero(format());
        for _ in 0..5 {
            pe.process(z, true);
        }
        pe.process(z, false);
        assert_eq!(pe.spike_count(), 5);
        pe.reset_spike_count();
        assert_eq!(pe.spike_count(), 0);
    }

    #[test]
    fn faulty_pe_corrupts_accumulator_output() {
        let config = SystolicConfig::new(2, 2).unwrap();
        let mut map = FaultMap::new(config);
        map.insert(Fault::new(PeCoord::new(0, 0), 15, StuckAt::One))
            .unwrap();

        let mut pe = ProcessingElement::new(format());
        pe.load_weight(1.0);
        pe.set_masks(map.masks(PeCoord::new(0, 0)).unwrap());
        assert!(pe.is_faulty());
        let out = pe.process(Fixed::from_f32(1.0, format()), true);
        assert!(out.to_f32() < 0.0, "sign bit stuck at 1 flips the sum");
    }

    #[test]
    fn bypass_forwards_presum_untouched() {
        let config = SystolicConfig::new(2, 2).unwrap();
        let mut map = FaultMap::new(config);
        map.insert(Fault::new(PeCoord::new(0, 0), 15, StuckAt::One))
            .unwrap();

        let mut pe = ProcessingElement::new(format());
        pe.load_weight(1.0);
        pe.set_masks(map.masks(PeCoord::new(0, 0)).unwrap());
        pe.set_bypassed(true);
        assert!(pe.is_bypassed());
        let presum = Fixed::from_f32(2.5, format());
        let out = pe.process(presum, true);
        assert_eq!(out, presum, "bypassed PE must not alter the partial sum");
        // The spike counter still observes traffic (it sits before the mux).
        assert_eq!(pe.spike_count(), 1);
    }

    #[test]
    fn weight_is_quantized_to_accumulator_format() {
        let mut pe = ProcessingElement::new(format());
        pe.load_weight(0.123_456);
        let q = format();
        assert!((pe.weight().to_f32() - 0.123_456).abs() <= q.resolution());
    }
}
