//! Weight-to-PE mapping of the weight-stationary dataflow.
//!
//! A layer's weights form a matrix `[out_dim, in_dim]` (convolutions are
//! flattened to `[out_channels, in_channels * k * k]` by the im2col lowering).
//! The array tiles that matrix: weight element `(o, i)` is pre-stored in PE
//! `(i mod rows, o mod cols)`. Because the array is reused across tiles and
//! layers, a single faulty PE touches *every* weight whose coordinates fold
//! onto it — the effect the paper highlights ("bypassing a single faulty PE
//! may result in the pruning of multiple pre-trained weights").

use crate::{FaultMap, PeCoord};
use falvolt_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Weight-stationary tiling of weight matrices onto an `rows x cols` PE grid.
///
/// # Example
///
/// ```
/// use falvolt_systolic::{SystolicConfig, WeightMapping};
///
/// # fn main() -> Result<(), falvolt_systolic::SystolicError> {
/// let config = SystolicConfig::new(4, 4)?;
/// let mapping = WeightMapping::new(&config);
/// // Weight (out=5, in=2) folds onto PE (2 % 4, 5 % 4) = (2, 1).
/// let pe = mapping.pe_for(5, 2);
/// assert_eq!((pe.row, pe.col), (2, 1));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WeightMapping {
    rows: usize,
    cols: usize,
}

impl WeightMapping {
    /// Creates the mapping for a systolic configuration.
    pub fn new(config: &crate::SystolicConfig) -> Self {
        Self {
            rows: config.rows(),
            cols: config.cols(),
        }
    }

    /// Creates the mapping from explicit grid dimensions.
    pub fn from_grid(rows: usize, cols: usize) -> Self {
        Self { rows, cols }
    }

    /// Grid rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Grid columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The PE that stores weight element `(out_idx, in_idx)`.
    pub fn pe_for(&self, out_idx: usize, in_idx: usize) -> PeCoord {
        PeCoord::new(in_idx % self.rows, out_idx % self.cols)
    }

    /// Indices `(out_idx, in_idx)` of all weights of an `[out_dim, in_dim]`
    /// matrix that map onto a faulty PE of `fault_map`.
    pub fn pruned_indices(
        &self,
        out_dim: usize,
        in_dim: usize,
        fault_map: &FaultMap,
    ) -> Vec<(usize, usize)> {
        if fault_map.is_empty() {
            return Vec::new();
        }
        let mut pruned = Vec::new();
        for out_idx in 0..out_dim {
            for in_idx in 0..in_dim {
                if fault_map.is_faulty(self.pe_for(out_idx, in_idx)) {
                    pruned.push((out_idx, in_idx));
                }
            }
        }
        pruned
    }

    /// A `[out_dim, in_dim]` mask tensor with `0.0` at weights mapped to
    /// faulty PEs and `1.0` elsewhere. Multiplying a weight matrix by this
    /// mask performs the paper's fault-aware pruning.
    pub fn prune_mask(&self, out_dim: usize, in_dim: usize, fault_map: &FaultMap) -> Tensor {
        let mut mask = Tensor::ones(&[out_dim, in_dim]);
        if fault_map.is_empty() {
            return mask;
        }
        // The fault pattern repeats with period (rows, cols); precompute one
        // period to avoid a HashMap lookup per weight on large layers.
        let mut faulty_tile = vec![false; self.rows * self.cols];
        for (idx, flag) in faulty_tile.iter_mut().enumerate() {
            let pe = PeCoord::new(idx / self.cols, idx % self.cols);
            *flag = fault_map.is_faulty(pe);
        }
        let data = mask.data_mut();
        for out_idx in 0..out_dim {
            let col = out_idx % self.cols;
            for in_idx in 0..in_dim {
                let row = in_idx % self.rows;
                if faulty_tile[row * self.cols + col] {
                    data[out_idx * in_dim + in_idx] = 0.0;
                }
            }
        }
        mask
    }

    /// Fraction of weights of an `[out_dim, in_dim]` matrix that the fault
    /// map prunes.
    pub fn pruned_fraction(&self, out_dim: usize, in_dim: usize, fault_map: &FaultMap) -> f64 {
        if out_dim == 0 || in_dim == 0 {
            return 0.0;
        }
        let mask = self.prune_mask(out_dim, in_dim, fault_map);
        let kept: f32 = mask.data().iter().sum();
        1.0 - kept as f64 / (out_dim * in_dim) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Fault, StuckAt, SystolicConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn config4() -> SystolicConfig {
        SystolicConfig::new(4, 4).unwrap()
    }

    #[test]
    fn mapping_folds_with_grid_period() {
        let mapping = WeightMapping::new(&config4());
        assert_eq!(mapping.pe_for(0, 0), PeCoord::new(0, 0));
        assert_eq!(mapping.pe_for(4, 4), PeCoord::new(0, 0));
        assert_eq!(mapping.pe_for(5, 2), PeCoord::new(2, 1));
        assert_eq!(mapping.rows(), 4);
        assert_eq!(mapping.cols(), 4);
    }

    #[test]
    fn one_faulty_pe_prunes_many_weights_when_array_is_reused() {
        let config = config4();
        let mapping = WeightMapping::new(&config);
        let fault_map = FaultMap::from_faults(
            config,
            vec![Fault::new(PeCoord::new(1, 2), 15, StuckAt::One)],
        )
        .unwrap();
        // An 8x8 weight matrix folds twice onto the 4x4 grid in each
        // dimension, so the single faulty PE prunes 2*2 = 4 weights.
        let pruned = mapping.pruned_indices(8, 8, &fault_map);
        assert_eq!(pruned.len(), 4);
        for (o, i) in pruned {
            assert_eq!(i % 4, 1);
            assert_eq!(o % 4, 2);
        }
    }

    #[test]
    fn prune_mask_matches_pruned_indices() {
        let config = config4();
        let mapping = WeightMapping::new(&config);
        let mut rng = StdRng::seed_from_u64(17);
        let fault_map =
            FaultMap::random_faulty_pes(&config, 5, 15, StuckAt::One, &mut rng).unwrap();
        let mask = mapping.prune_mask(10, 7, &fault_map);
        let indices = mapping.pruned_indices(10, 7, &fault_map);
        let zero_count = mask.data().iter().filter(|&&v| v == 0.0).count();
        assert_eq!(zero_count, indices.len());
        for (o, i) in indices {
            assert_eq!(mask.get(&[o, i]), 0.0);
        }
    }

    #[test]
    fn empty_fault_map_prunes_nothing() {
        let config = config4();
        let mapping = WeightMapping::new(&config);
        let fault_map = FaultMap::new(config);
        assert!(mapping.pruned_indices(16, 16, &fault_map).is_empty());
        assert_eq!(mapping.pruned_fraction(16, 16, &fault_map), 0.0);
        assert!(mapping
            .prune_mask(16, 16, &fault_map)
            .data()
            .iter()
            .all(|&v| v == 1.0));
    }

    #[test]
    fn pruned_fraction_tracks_fault_rate_for_large_layers() {
        // When the weight matrix is much larger than the array, the pruned
        // fraction approaches the PE fault rate.
        let config = SystolicConfig::new(8, 8).unwrap();
        let mapping = WeightMapping::new(&config);
        let mut rng = StdRng::seed_from_u64(23);
        let fault_map =
            FaultMap::random_faulty_pes(&config, 19, 15, StuckAt::One, &mut rng).unwrap();
        let frac = mapping.pruned_fraction(64, 64, &fault_map);
        assert!((frac - fault_map.fault_rate()).abs() < 1e-9);
    }

    #[test]
    fn small_matrix_on_large_array_prunes_at_most_once_per_weight() {
        let config = SystolicConfig::new(16, 16).unwrap();
        let mapping = WeightMapping::new(&config);
        let fault_map = FaultMap::from_faults(
            config,
            vec![Fault::new(PeCoord::new(2, 3), 15, StuckAt::One)],
        )
        .unwrap();
        // A 4x4 matrix does not even reach PE (2, 3)'s column/row fold, except
        // for the single direct hit if within range.
        let pruned = mapping.pruned_indices(4, 4, &fault_map);
        assert!(pruned.len() <= 1);
    }
}
