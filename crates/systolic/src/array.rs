//! Structural (PE-by-PE) simulation of the systolic array.
//!
//! [`SystolicArray`] instantiates one [`ProcessingElement`] per grid position
//! and pushes spike wavefronts through it, exactly as the block diagram in
//! the paper's Figure 1 describes: spikes enter the rows, weights are
//! pre-stored in the PEs, partial sums flow down the columns. It is slower
//! than [`crate::SystolicExecutor`] but serves as the ground-truth model the
//! executor is validated against (see the crate's integration tests).

use crate::{FaultMap, PeCoord, ProcessingElement, Result, SystolicConfig, SystolicError};
use falvolt_fixedpoint::Fixed;
use falvolt_tensor::Tensor;

/// A structural model of the weight-stationary systolic array.
///
/// # Example
///
/// ```
/// use falvolt_systolic::{FaultMap, SystolicArray, SystolicConfig};
/// use falvolt_tensor::Tensor;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let config = SystolicConfig::new(2, 2)?;
/// let mut array = SystolicArray::new(config, &FaultMap::new(config));
/// array.load_weights(&Tensor::from_vec(vec![2, 2], vec![0.5, 1.0, 0.25, 0.75])?)?;
/// let sums = array.process_spikes(&[true, true]);
/// assert!((sums[0] - 0.75).abs() < 1e-2);
/// assert!((sums[1] - 1.75).abs() < 1e-2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SystolicArray {
    config: SystolicConfig,
    grid: Vec<ProcessingElement>,
}

impl SystolicArray {
    /// Builds the array and installs the fault masks from `fault_map`.
    pub fn new(config: SystolicConfig, fault_map: &FaultMap) -> Self {
        let format = config.accumulator_format();
        let mut grid = vec![ProcessingElement::new(format); config.pe_count()];
        for (idx, pe) in grid.iter_mut().enumerate() {
            let coord = PeCoord::new(idx / config.cols(), idx % config.cols());
            if let Some(masks) = fault_map.masks(coord) {
                pe.set_masks(masks);
            }
        }
        Self { config, grid }
    }

    /// The array configuration.
    pub fn config(&self) -> &SystolicConfig {
        &self.config
    }

    /// Borrow a PE for inspection.
    ///
    /// # Errors
    ///
    /// Returns [`SystolicError::PeOutOfRange`] for coordinates outside the
    /// grid.
    pub fn pe(&self, coord: PeCoord) -> Result<&ProcessingElement> {
        self.index(coord).map(|i| &self.grid[i])
    }

    /// Borrow a PE mutably (e.g. to enable its bypass path).
    ///
    /// # Errors
    ///
    /// Returns [`SystolicError::PeOutOfRange`] for coordinates outside the
    /// grid.
    pub fn pe_mut(&mut self, coord: PeCoord) -> Result<&mut ProcessingElement> {
        self.index(coord).map(move |i| &mut self.grid[i])
    }

    /// Enables the bypass multiplexer of every faulty PE.
    pub fn bypass_faulty_pes(&mut self) {
        for pe in &mut self.grid {
            if pe.is_faulty() {
                pe.set_bypassed(true);
            }
        }
    }

    /// Pre-stores a weight tile of shape `[rows, cols]` (or smaller) into the
    /// grid. Weight `(r, c)` lands in PE `(r, c)`.
    ///
    /// # Errors
    ///
    /// Returns [`SystolicError::Tensor`] if the tile is not a matrix or is
    /// larger than the grid.
    pub fn load_weights(&mut self, tile: &Tensor) -> Result<()> {
        if tile.ndim() != 2 {
            return Err(SystolicError::Tensor(
                falvolt_tensor::TensorError::RankMismatch {
                    expected: 2,
                    actual: tile.ndim(),
                },
            ));
        }
        let (r, c) = (tile.shape()[0], tile.shape()[1]);
        if r > self.config.rows() || c > self.config.cols() {
            return Err(SystolicError::Tensor(
                falvolt_tensor::TensorError::InvalidArgument {
                    reason: format!(
                        "weight tile {r}x{c} does not fit the {}x{} grid",
                        self.config.rows(),
                        self.config.cols()
                    ),
                },
            ));
        }
        for row in 0..r {
            for col in 0..c {
                let idx = row * self.config.cols() + col;
                self.grid[idx].load_weight(tile.get(&[row, col]));
            }
        }
        Ok(())
    }

    /// Streams one spike wavefront (one spike per row) through the array and
    /// returns the per-column accumulated sums.
    ///
    /// Rows beyond `spikes.len()` contribute nothing.
    pub fn process_spikes(&mut self, spikes: &[bool]) -> Vec<f32> {
        let format = self.config.accumulator_format();
        let cols = self.config.cols();
        let mut sums = vec![0.0f32; cols];
        for (col, sum) in sums.iter_mut().enumerate() {
            let mut acc = Fixed::zero(format);
            for (row, &spike) in spikes.iter().enumerate().take(self.config.rows()) {
                let idx = row * cols + col;
                acc = self.grid[idx].process(acc, spike);
            }
            *sum = acc.to_f32();
        }
        sums
    }

    /// Total number of spikes observed by all PEs since the last reset.
    pub fn total_spike_count(&self) -> u64 {
        self.grid.iter().map(ProcessingElement::spike_count).sum()
    }

    /// Resets every PE's spike counter.
    pub fn reset_spike_counts(&mut self) {
        for pe in &mut self.grid {
            pe.reset_spike_count();
        }
    }

    fn index(&self, coord: PeCoord) -> Result<usize> {
        if coord.row >= self.config.rows() || coord.col >= self.config.cols() {
            return Err(SystolicError::PeOutOfRange {
                row: coord.row,
                col: coord.col,
                rows: self.config.rows(),
                cols: self.config.cols(),
            });
        }
        Ok(coord.row * self.config.cols() + coord.col)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::BypassPolicy;
    use crate::{Fault, StuckAt, SystolicExecutor};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn config() -> SystolicConfig {
        SystolicConfig::new(4, 4).unwrap()
    }

    #[test]
    fn clean_array_computes_column_sums() {
        let config = config();
        let mut array = SystolicArray::new(config, &FaultMap::new(config));
        let tile = Tensor::from_fn(&[4, 4], |i| (i % 3) as f32 * 0.5);
        array.load_weights(&tile).unwrap();
        let sums = array.process_spikes(&[true, false, true, true]);
        // Column sums of rows {0, 2, 3}.
        for (c, &sum) in sums.iter().enumerate() {
            let expected: f32 = [0usize, 2, 3].iter().map(|&r| tile.get(&[r, c])).sum();
            assert!((sum - expected).abs() < 1e-2, "column {c}");
        }
        assert_eq!(array.total_spike_count(), 3 * 4);
        array.reset_spike_counts();
        assert_eq!(array.total_spike_count(), 0);
    }

    #[test]
    fn structural_and_executor_models_agree() {
        // The executor's fast path and the structural array must compute the
        // same faulty column sums for a single tile pass.
        let config = config();
        let mut rng = StdRng::seed_from_u64(31);
        let fault_map =
            FaultMap::random_faulty_pes(&config, 3, 15, StuckAt::One, &mut rng).unwrap();
        let tile = falvolt_tensor::init::uniform(&[4, 4], -1.0, 1.0, &mut rng);
        let spikes: Vec<bool> = (0..4).map(|_| rng.gen_bool(0.5)).collect();

        let mut array = SystolicArray::new(config, &fault_map);
        array.load_weights(&tile).unwrap();
        let structural = array.process_spikes(&spikes);

        let executor = SystolicExecutor::new(config, fault_map);
        let spike_row = Tensor::from_vec(
            vec![1, 4],
            spikes.iter().map(|&s| if s { 1.0 } else { 0.0 }).collect(),
        )
        .unwrap();
        let fast = executor.matmul(&spike_row, &tile).unwrap();
        for (c, &s) in structural.iter().enumerate() {
            assert!(
                (s - fast.get(&[0, c])).abs() < 1e-4,
                "column {c}: structural {} vs executor {}",
                s,
                fast.get(&[0, c])
            );
        }
    }

    #[test]
    fn bypassing_faulty_pes_matches_skip_policy() {
        let config = config();
        let fault_map = FaultMap::from_faults(
            config,
            vec![Fault::new(PeCoord::new(1, 2), 15, StuckAt::One)],
        )
        .unwrap();
        let tile = Tensor::full(&[4, 4], 0.5);
        let spikes = [true, true, true, true];

        let mut array = SystolicArray::new(config, &fault_map);
        array.load_weights(&tile).unwrap();
        array.bypass_faulty_pes();
        let structural = array.process_spikes(&spikes);

        let executor = SystolicExecutor::with_bypass(config, fault_map, BypassPolicy::SkipFaulty);
        let spike_row = Tensor::ones(&[1, 4]);
        let fast = executor.matmul(&spike_row, &tile).unwrap();
        for (c, &s) in structural.iter().enumerate() {
            assert!((s - fast.get(&[0, c])).abs() < 1e-4);
        }
    }

    #[test]
    fn pe_access_validates_coordinates() {
        let config = config();
        let mut array = SystolicArray::new(config, &FaultMap::new(config));
        assert!(array.pe(PeCoord::new(0, 0)).is_ok());
        assert!(array.pe(PeCoord::new(4, 0)).is_err());
        assert!(array.pe_mut(PeCoord::new(0, 4)).is_err());
    }

    #[test]
    fn load_weights_validates_tile() {
        let config = config();
        let mut array = SystolicArray::new(config, &FaultMap::new(config));
        assert!(array.load_weights(&Tensor::ones(&[5, 4])).is_err());
        assert!(array.load_weights(&Tensor::ones(&[4])).is_err());
        assert!(array.load_weights(&Tensor::ones(&[3, 2])).is_ok());
    }
}
