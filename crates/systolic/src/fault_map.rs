//! Fault maps: the set of stuck-at faults present in a fabricated chip.
//!
//! In the paper's methodology a fault map is obtained from post-fabrication
//! testing of each chip; experiments sweep randomly generated fault maps.
//! A [`FaultMap`] validates every fault against the grid and accumulator
//! format and pre-composes each PE's faults into an AND/OR mask pair that the
//! executor applies to the accumulator output on every pass.

use crate::{Fault, PeCoord, Result, StuckAt, SystolicConfig, SystolicError};
use falvolt_fixedpoint::Fixed;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// The composed effect of all stuck-at faults of one PE on its accumulator
/// output word: `out = (acc & and_mask) | or_mask`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PeMasks {
    /// AND mask (stuck-at-0 faults clear their bit here).
    pub and_mask: u32,
    /// OR mask (stuck-at-1 faults set their bit here).
    pub or_mask: u32,
}

impl PeMasks {
    /// The identity masks of a fault-free PE.
    pub fn identity() -> Self {
        Self {
            and_mask: u32::MAX,
            or_mask: 0,
        }
    }

    /// Applies the masks to a fixed-point accumulator value.
    pub fn apply(&self, value: Fixed) -> Fixed {
        value.with_masks(self.and_mask, self.or_mask)
    }

    /// Returns `true` if the masks change nothing.
    pub fn is_identity(&self) -> bool {
        self.and_mask == u32::MAX && self.or_mask == 0
    }

    /// Composes two mask applications into one: `self.then(next)` applied
    /// once equals applying `self` and then `next`. Exact on the word level
    /// — `((x & a₁ | o₁) & a₂) | o₂ = (x & a₁a₂) | ((o₁ & a₂) | o₂)` — which
    /// is what lets the executor collapse the run of masks between two
    /// nonzero activations into a single pair and skip zero-activation steps
    /// in faulty columns without changing a bit. Composition is idempotent
    /// (`m.then(m) == m`), so replaying a periodic mask chain any number of
    /// times equals one composed application.
    pub fn then(&self, next: PeMasks) -> PeMasks {
        PeMasks {
            and_mask: self.and_mask & next.and_mask,
            or_mask: (self.or_mask & next.and_mask) | next.or_mask,
        }
    }
}

impl Default for PeMasks {
    fn default() -> Self {
        Self::identity()
    }
}

/// The set of permanent stuck-at faults of one fabricated systolicSNN chip.
///
/// # Example
///
/// ```
/// use falvolt_systolic::{Fault, FaultMap, PeCoord, StuckAt, SystolicConfig};
///
/// # fn main() -> Result<(), falvolt_systolic::SystolicError> {
/// let config = SystolicConfig::new(4, 4)?;
/// let mut map = FaultMap::new(config);
/// map.insert(Fault::new(PeCoord::new(1, 2), 15, StuckAt::One))?;
/// assert!(map.is_faulty(PeCoord::new(1, 2)));
/// assert_eq!(map.faulty_pe_count(), 1);
/// assert!((map.fault_rate() - 1.0 / 16.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultMap {
    config: SystolicConfig,
    faults: Vec<Fault>,
    masks: BTreeMap<PeCoord, PeMasks>,
}

impl FaultMap {
    /// Creates an empty (fault-free) map for the given configuration.
    pub fn new(config: SystolicConfig) -> Self {
        Self {
            config,
            faults: Vec::new(),
            masks: BTreeMap::new(),
        }
    }

    /// Creates a map from a list of faults.
    ///
    /// # Errors
    ///
    /// Returns an error if any fault references a PE or bit outside the
    /// configuration.
    pub fn from_faults(config: SystolicConfig, faults: Vec<Fault>) -> Result<Self> {
        let mut map = Self::new(config);
        for fault in faults {
            map.insert(fault)?;
        }
        Ok(map)
    }

    /// Adds a fault to the map.
    ///
    /// # Errors
    ///
    /// Returns [`SystolicError::PeOutOfRange`] or a fixed-point bit-range
    /// error when the fault is invalid for the configuration.
    pub fn insert(&mut self, fault: Fault) -> Result<()> {
        if fault.pe.row >= self.config.rows() || fault.pe.col >= self.config.cols() {
            return Err(SystolicError::PeOutOfRange {
                row: fault.pe.row,
                col: fault.pe.col,
                rows: self.config.rows(),
                cols: self.config.cols(),
            });
        }
        self.config.accumulator_format().check_bit(fault.bit)?;
        let entry = self.masks.entry(fault.pe).or_insert_with(PeMasks::identity);
        match fault.kind {
            StuckAt::Zero => entry.and_mask &= !(1u32 << fault.bit),
            StuckAt::One => entry.or_mask |= 1u32 << fault.bit,
        }
        self.faults.push(fault);
        Ok(())
    }

    /// The configuration this fault map was generated for.
    pub fn config(&self) -> &SystolicConfig {
        &self.config
    }

    /// All individual faults, in insertion order.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Number of individual stuck-at faults.
    pub fn fault_count(&self) -> usize {
        self.faults.len()
    }

    /// Number of distinct faulty PEs.
    pub fn faulty_pe_count(&self) -> usize {
        self.masks.len()
    }

    /// Faulty PE coordinates in deterministic (row-major) order.
    pub fn faulty_pes(&self) -> Vec<PeCoord> {
        self.masks.keys().copied().collect()
    }

    /// Fraction of PEs that have at least one fault.
    pub fn fault_rate(&self) -> f64 {
        self.config.fault_rate_for(self.faulty_pe_count())
    }

    /// Returns `true` when the PE has at least one stuck-at fault.
    pub fn is_faulty(&self, pe: PeCoord) -> bool {
        self.masks.contains_key(&pe)
    }

    /// The composed masks of a PE, or `None` for fault-free PEs.
    pub fn masks(&self, pe: PeCoord) -> Option<PeMasks> {
        self.masks.get(&pe).copied()
    }

    /// Returns `true` when the map contains no faults.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Content fingerprint of the map's *effect*: grid shape, accumulator
    /// format and the composed masks of every faulty PE (in canonical
    /// row-major order). Two maps with the same fingerprint corrupt products
    /// identically, which is what backend fingerprints (and through them the
    /// cross-call prefix cache) key on.
    pub fn fingerprint(&self) -> u64 {
        let mut fp = falvolt_tensor::Fingerprint::new();
        fp.write_str("fault-map");
        fp.write_usize(self.config.rows());
        fp.write_usize(self.config.cols());
        let format = self.config.accumulator_format();
        fp.write_usize(format.total_bits() as usize);
        fp.write_usize(format.frac_bits() as usize);
        fp.write_usize(self.masks.len());
        for (pe, masks) in &self.masks {
            fp.write_usize(pe.row);
            fp.write_usize(pe.col);
            fp.write_u64(u64::from(masks.and_mask));
            fp.write_u64(u64::from(masks.or_mask));
        }
        fp.finish() as u64
    }

    // ------------------------------------------------------------------
    // Generators used by the paper's experiments
    // ------------------------------------------------------------------

    /// Generates a fault map with `faulty_pes` distinct random PEs, each
    /// carrying one stuck-at fault of polarity `kind` at bit `bit`.
    ///
    /// This mirrors the paper's per-experiment fault maps: a fixed number of
    /// faulty PEs, faults in a chosen accumulator output bit (MSBs for the
    /// worst-case analysis), uniformly distributed over the grid.
    ///
    /// # Errors
    ///
    /// Returns [`SystolicError::TooManyFaultyPes`] when more faulty PEs are
    /// requested than the grid has, or a bit-range error for invalid `bit`.
    pub fn random_faulty_pes(
        config: &SystolicConfig,
        faulty_pes: usize,
        bit: u32,
        kind: StuckAt,
        rng: &mut impl Rng,
    ) -> Result<Self> {
        config.accumulator_format().check_bit(bit)?;
        let pes = sample_distinct_pes(config, faulty_pes, rng)?;
        let faults = pes
            .into_iter()
            .map(|pe| Fault::new(pe, bit, kind))
            .collect();
        Self::from_faults(*config, faults)
    }

    /// Generates a fault map with `faulty_pes` distinct random PEs carrying
    /// stuck-at faults of random polarity at random bit positions in the
    /// high-order half of the accumulator word (the paper's worst-case MSB
    /// region).
    ///
    /// # Errors
    ///
    /// Returns [`SystolicError::TooManyFaultyPes`] when more faulty PEs are
    /// requested than the grid has.
    pub fn random_msb_faults(
        config: &SystolicConfig,
        faulty_pes: usize,
        rng: &mut impl Rng,
    ) -> Result<Self> {
        let format = config.accumulator_format();
        let half = format.total_bits() / 2;
        let pes = sample_distinct_pes(config, faulty_pes, rng)?;
        let faults = pes
            .into_iter()
            .map(|pe| {
                let bit = rng.gen_range(half..format.total_bits());
                let kind = if rng.gen_bool(0.5) {
                    StuckAt::One
                } else {
                    StuckAt::Zero
                };
                Fault::new(pe, bit, kind)
            })
            .collect();
        Self::from_faults(*config, faults)
    }

    /// Generates a fault map covering a *fraction* `rate` of all PEs, each
    /// with a stuck-at fault of polarity `kind` at bit `bit` — the format the
    /// mitigation experiments use (10%, 30%, 60% faulty PEs).
    ///
    /// # Errors
    ///
    /// Returns [`SystolicError::InvalidFaultRate`] for rates outside `[0, 1]`
    /// or a bit-range error for invalid `bit`.
    pub fn random_with_rate(
        config: &SystolicConfig,
        rate: f64,
        bit: u32,
        kind: StuckAt,
        rng: &mut impl Rng,
    ) -> Result<Self> {
        let faulty = config.faulty_pes_for_rate(rate)?;
        Self::random_faulty_pes(config, faulty, bit, kind, rng)
    }

    /// Generates one fault map per requested iteration, as the paper does
    /// ("each iteration uses a distinct fault map", 8 iterations per
    /// experiment).
    ///
    /// # Errors
    ///
    /// Propagates errors from [`FaultMap::random_faulty_pes`].
    pub fn random_batch(
        config: &SystolicConfig,
        faulty_pes: usize,
        bit: u32,
        kind: StuckAt,
        iterations: usize,
        rng: &mut impl Rng,
    ) -> Result<Vec<Self>> {
        (0..iterations)
            .map(|_| Self::random_faulty_pes(config, faulty_pes, bit, kind, rng))
            .collect()
    }
}

impl fmt::Display for FaultMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "FaultMap({} faults on {} PEs, {:.3}% of {})",
            self.fault_count(),
            self.faulty_pe_count(),
            self.fault_rate() * 100.0,
            self.config
        )
    }
}

fn sample_distinct_pes(
    config: &SystolicConfig,
    count: usize,
    rng: &mut impl Rng,
) -> Result<Vec<PeCoord>> {
    let total = config.pe_count();
    if count > total {
        return Err(SystolicError::TooManyFaultyPes {
            requested: count,
            available: total,
        });
    }
    // For small requests relative to the grid, rejection sampling avoids
    // materialising the full coordinate list (a 256x256 grid has 65k PEs).
    if count * 4 < total {
        let mut chosen = std::collections::BTreeSet::new();
        while chosen.len() < count {
            let row = rng.gen_range(0..config.rows());
            let col = rng.gen_range(0..config.cols());
            chosen.insert(PeCoord::new(row, col));
        }
        Ok(chosen.into_iter().collect())
    } else {
        let mut all: Vec<PeCoord> = (0..config.rows())
            .flat_map(|r| (0..config.cols()).map(move |c| PeCoord::new(r, c)))
            .collect();
        all.shuffle(rng);
        all.truncate(count);
        Ok(all)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use falvolt_fixedpoint::QFormat;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn config4() -> SystolicConfig {
        SystolicConfig::new(4, 4).unwrap()
    }

    #[test]
    fn masks_compose_multiple_faults_on_one_pe() {
        let mut map = FaultMap::new(config4());
        let pe = PeCoord::new(2, 3);
        map.insert(Fault::new(pe, 0, StuckAt::One)).unwrap();
        map.insert(Fault::new(pe, 15, StuckAt::Zero)).unwrap();
        let masks = map.masks(pe).unwrap();
        assert_eq!(masks.or_mask, 1);
        assert_eq!(masks.and_mask, !(1u32 << 15));
        assert_eq!(map.fault_count(), 2);
        assert_eq!(map.faulty_pe_count(), 1);
    }

    #[test]
    fn insert_validates_pe_and_bit() {
        let mut map = FaultMap::new(config4());
        assert!(matches!(
            map.insert(Fault::new(PeCoord::new(4, 0), 0, StuckAt::One)),
            Err(SystolicError::PeOutOfRange { .. })
        ));
        assert!(matches!(
            map.insert(Fault::new(PeCoord::new(0, 0), 16, StuckAt::One)),
            Err(SystolicError::FixedPoint(_))
        ));
        assert!(map.is_empty());
    }

    #[test]
    fn identity_masks_do_nothing() {
        let masks = PeMasks::identity();
        assert!(masks.is_identity());
        let q = QFormat::accumulator_default();
        let x = Fixed::from_f32(3.25, q);
        assert_eq!(masks.apply(x), x);
    }

    #[test]
    fn stuck_at_masks_apply_to_values() {
        let mut map = FaultMap::new(config4());
        let pe = PeCoord::new(0, 0);
        map.insert(Fault::new(pe, 15, StuckAt::One)).unwrap();
        let masks = map.masks(pe).unwrap();
        let q = QFormat::accumulator_default();
        let corrupted = masks.apply(Fixed::from_f32(1.0, q));
        assert!(corrupted.to_f32() < 0.0, "sa1 in the sign bit flips sign");
    }

    #[test]
    fn random_generator_respects_count_and_bit() {
        let config = config4();
        let mut rng = StdRng::seed_from_u64(11);
        let map = FaultMap::random_faulty_pes(&config, 5, 15, StuckAt::One, &mut rng).unwrap();
        assert_eq!(map.faulty_pe_count(), 5);
        assert!(map.faults().iter().all(|f| f.bit == 15));
        assert!(map.faulty_pes().iter().all(|pe| pe.row < 4 && pe.col < 4));
    }

    #[test]
    fn random_generator_rejects_oversubscription() {
        let config = config4();
        let mut rng = StdRng::seed_from_u64(11);
        assert!(matches!(
            FaultMap::random_faulty_pes(&config, 17, 0, StuckAt::Zero, &mut rng),
            Err(SystolicError::TooManyFaultyPes { .. })
        ));
        // Exactly the full grid is allowed.
        let map = FaultMap::random_faulty_pes(&config, 16, 0, StuckAt::Zero, &mut rng).unwrap();
        assert_eq!(map.faulty_pe_count(), 16);
        assert!((map.fault_rate() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rate_generator_matches_requested_fraction() {
        let config = SystolicConfig::new(16, 16).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let map = FaultMap::random_with_rate(&config, 0.30, 15, StuckAt::One, &mut rng).unwrap();
        assert_eq!(map.faulty_pe_count(), 77); // round(0.30 * 256)
        assert!(FaultMap::random_with_rate(&config, 1.5, 15, StuckAt::One, &mut rng).is_err());
    }

    #[test]
    fn msb_generator_stays_in_high_half() {
        let config = SystolicConfig::new(8, 8).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let map = FaultMap::random_msb_faults(&config, 10, &mut rng).unwrap();
        let half = config.accumulator_format().total_bits() / 2;
        assert!(map.faults().iter().all(|f| f.bit >= half));
    }

    #[test]
    fn batch_generates_distinct_maps() {
        let config = SystolicConfig::new(8, 8).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let maps = FaultMap::random_batch(&config, 4, 15, StuckAt::One, 8, &mut rng).unwrap();
        assert_eq!(maps.len(), 8);
        // At least two of the eight maps should differ (overwhelmingly likely).
        assert!(maps.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn seeded_generation_is_reproducible() {
        let config = SystolicConfig::new(8, 8).unwrap();
        let a = FaultMap::random_faulty_pes(
            &config,
            6,
            15,
            StuckAt::One,
            &mut StdRng::seed_from_u64(9),
        )
        .unwrap();
        let b = FaultMap::random_faulty_pes(
            &config,
            6,
            15,
            StuckAt::One,
            &mut StdRng::seed_from_u64(9),
        )
        .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn display_reports_rate() {
        let config = config4();
        let mut rng = StdRng::seed_from_u64(1);
        let map = FaultMap::random_faulty_pes(&config, 8, 15, StuckAt::One, &mut rng).unwrap();
        assert!(map.to_string().contains("8 faults"));
        assert!(map.to_string().contains("50.000%"));
    }
}
