//! Faulty matrix-product executor.
//!
//! The SNN layers lower their linear algebra (convolutions via im2col, fully
//! connected layers directly) to matrix products `activations x weights`. The
//! executor replays those products through the systolic array: every partial
//! sum of an output element passes through the accumulator of the PE that
//! stores the corresponding weight, where the PE's stuck-at faults corrupt it.
//!
//! Execution is structured around a [`FoldPlan`]: all per-`(k, column-fold)`
//! fault state is resolved once per product, output columns whose PE column
//! is fault-free fold to the clean blocked kernel
//! ([`falvolt_tensor::kernels`]), and the remaining corruptible columns are
//! evaluated with the quantized accumulator chain, parallelised over output
//! rows (fault application is per-output-element, so rows are independent).
//!
//! Two scenario-throughput layers sit on top of the plan:
//!
//! * **Composed mask chains** — stuck-at masks compose associatively
//!   ([`PeMasks::then`]), so the run of masks between two nonzero activations
//!   collapses into a single (AND, OR) pair. Faulty columns walk only the
//!   nonzero activations and the (sparse, per-fold) masked positions instead
//!   of all `k` steps — bit-identical by construction, since the same adds
//!   and the same composed masks are applied in the same order.
//! * **Shared clean products** — with a [`crate::ProductCache`] installed,
//!   the maskless quantized chain of a product's fault-free columns is
//!   computed once per distinct activation matrix and shared across every
//!   fault scenario in a sweep (clean columns do not depend on the fault
//!   map). See the cache docs for the promote-on-second-request policy.

use crate::fault_map::PeMasks;
use crate::product_cache::{CacheDecision, ProductCache};
use crate::{FaultMap, Result, SystolicConfig, SystolicError, WeightMapping};
use falvolt_fixedpoint::{Fixed, QFormat};
use falvolt_tensor::{Fingerprint, MatmulHint, Tensor, TensorError};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Work threshold (in accumulation steps, `m * n * k`) below which the
/// faulty path stays serial — tiny per-layer products are issued constantly
/// during inference, often from already-parallel scenario workers.
const PARALLEL_ELEMENT_THRESHOLD: usize = 1 << 15;

/// How the executor treats faulty PEs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum BypassPolicy {
    /// Faulty PEs stay in the datapath and corrupt partial sums (the
    /// vulnerability-analysis setting).
    #[default]
    None,
    /// Faulty PEs are bypassed through the multiplexer of Figure 3b: their
    /// weight contribution is skipped and their faults never reach the
    /// partial sum (the fault-aware-pruning setting).
    SkipFaulty,
}

/// Executes matrix products on the (possibly faulty) systolic array.
///
/// # Example
///
/// ```
/// use falvolt_systolic::executor::BypassPolicy;
/// use falvolt_systolic::{FaultMap, SystolicConfig, SystolicExecutor};
/// use falvolt_tensor::Tensor;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let config = SystolicConfig::new(4, 4)?;
/// let executor = SystolicExecutor::new(config, FaultMap::new(config));
/// let a = Tensor::ones(&[2, 4]);
/// let b = Tensor::full(&[4, 3], 0.25);
/// let out = executor.matmul(&a, &b)?;
/// // With no faults the array reproduces the exact product (within
/// // fixed-point resolution).
/// assert!((out.get(&[0, 0]) - 1.0).abs() < 1e-2);
/// assert_eq!(executor.bypass_policy(), BypassPolicy::None);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SystolicExecutor {
    config: SystolicConfig,
    fault_map: FaultMap,
    mapping: WeightMapping,
    bypass: BypassPolicy,
    composed_chains: bool,
    cache: Option<Arc<ProductCache>>,
}

impl PartialEq for SystolicExecutor {
    fn eq(&self, other: &Self) -> bool {
        // The cache is a perf-sharing handle, not executor state: two
        // executors that compute identical products compare equal.
        self.config == other.config
            && self.fault_map == other.fault_map
            && self.mapping == other.mapping
            && self.bypass == other.bypass
            && self.composed_chains == other.composed_chains
    }
}

impl SystolicExecutor {
    /// Creates an executor for a configuration and fault map, with faults
    /// active in the datapath ([`BypassPolicy::None`]) and composed mask
    /// chains enabled.
    pub fn new(config: SystolicConfig, fault_map: FaultMap) -> Self {
        let mapping = WeightMapping::new(&config);
        Self {
            config,
            fault_map,
            mapping,
            bypass: BypassPolicy::None,
            composed_chains: true,
            cache: None,
        }
    }

    /// Creates an executor with an explicit bypass policy.
    pub fn with_bypass(config: SystolicConfig, fault_map: FaultMap, bypass: BypassPolicy) -> Self {
        let mut e = Self::new(config, fault_map);
        e.bypass = bypass;
        e
    }

    /// The systolic configuration.
    pub fn config(&self) -> &SystolicConfig {
        &self.config
    }

    /// The installed fault map.
    pub fn fault_map(&self) -> &FaultMap {
        &self.fault_map
    }

    /// The weight-stationary mapping used by this executor.
    pub fn mapping(&self) -> WeightMapping {
        self.mapping
    }

    /// The current bypass policy.
    pub fn bypass_policy(&self) -> BypassPolicy {
        self.bypass
    }

    /// Changes the bypass policy.
    pub fn set_bypass_policy(&mut self, bypass: BypassPolicy) {
        self.bypass = bypass;
    }

    /// Replaces the fault map (e.g. to evaluate several chips with one
    /// executor).
    pub fn set_fault_map(&mut self, fault_map: FaultMap) {
        self.fault_map = fault_map;
    }

    /// Enables or disables mask-chain composition on the faulty path.
    /// Disabled replays every one of the `k` accumulation steps per faulty
    /// column (the pre-composition engine) — kept as the baseline for
    /// benchmarks and bit-identity property tests.
    pub fn set_composed_mask_chains(&mut self, enabled: bool) {
        self.composed_chains = enabled;
    }

    /// `true` when the faulty path uses composed mask chains.
    pub fn composed_mask_chains(&self) -> bool {
        self.composed_chains
    }

    /// Installs (or removes) a sweep-shared clean-product cache.
    pub fn set_product_cache(&mut self, cache: Option<Arc<ProductCache>>) {
        self.cache = cache;
    }

    /// The installed product cache, if any.
    pub fn product_cache(&self) -> Option<&Arc<ProductCache>> {
        self.cache.as_ref()
    }

    /// Computes `activations x weights` on the systolic array with
    /// [`MatmulHint::Auto`]; see [`SystolicExecutor::matmul_hinted`].
    ///
    /// # Errors
    ///
    /// Returns a tensor error for non-matrix inputs or mismatched inner
    /// dimensions.
    pub fn matmul(&self, activations: &Tensor, weights: &Tensor) -> Result<Tensor> {
        self.matmul_hinted(activations, weights, MatmulHint::Auto)
    }

    /// Computes `activations x weights` on the systolic array.
    ///
    /// `activations` has shape `[M, K]` (rows of spikes or activations) and
    /// `weights` has shape `[K, N]`. Weight element `(k, n)` resides in PE
    /// `(k mod rows, n mod cols)`; the partial sum of output `(m, n)` passes
    /// through that PE's accumulator, where its stuck-at faults are applied.
    ///
    /// `hint` steers the fault-free fast path onto the event-driven sparse
    /// kernel for spike activations. The faulty path ignores it: fault
    /// corruption replays the exact quantized accumulator chain regardless,
    /// so fault-injection results are bit-identical whatever the hint — and
    /// bit-identical whether mask chains are composed or replayed, and
    /// whether clean columns come from the shared product cache or are
    /// recomputed.
    ///
    /// # Errors
    ///
    /// Returns a tensor error for non-matrix inputs or mismatched inner
    /// dimensions.
    pub fn matmul_hinted(
        &self,
        activations: &Tensor,
        weights: &Tensor,
        hint: MatmulHint,
    ) -> Result<Tensor> {
        let (m, k) = matrix_dims(activations)?;
        let (k2, n) = matrix_dims(weights)?;
        if k != k2 {
            return Err(SystolicError::Tensor(TensorError::MatmulDimMismatch {
                left_cols: k,
                right_rows: k2,
            }));
        }
        let a = activations.data();
        let w = weights.data();

        // Consulting the product cache costs a content hash of both operands
        // (O(mk + kn)); the shareable win scales with the output (O(mn) per
        // reusing scenario, times the chain length). Only consult when the
        // hash amortises against the output — this admits the batch-sized
        // encoder lowering (huge m, tiny k·n) and rejects the per-scenario
        // fully connected products (huge k, tiny m·n) whose activations
        // diverge across scenarios and would never hit anyway.
        let cache = self.cache.as_ref().filter(|_| m * k + k * n <= 4 * m * n);

        // Hoist all per-(k, col-fold) fault state out of the element loops;
        // the dense replay chains are only materialised when the replay
        // engine will actually walk them.
        let plan = if self.composed_chains {
            FoldPlan::without_replay_chains(&self.config, &self.fault_map, k)
        } else {
            FoldPlan::new(&self.config, &self.fault_map, k)
        };

        // Fast path: with no fault anywhere in the array the datapath cannot
        // corrupt anything, so the product folds to the kernel layer's
        // structure-aware dispatch (blocked dense, or gather-accumulate for
        // sparse spike activations). (This also drops the hardware's
        // fixed-point quantization — an ideal-hardware idealisation bounded
        // by k * resolution; only faulty maps replay the quantized datapath
        // below.)
        if !plan.any_fault() {
            if let Some(cache) = cache {
                let key = product_key("float", a, w, m, k, n, hint_tag(hint));
                match cache.lookup(key) {
                    CacheDecision::Hit(shared) => {
                        return Ok(Tensor::from_vec(vec![m, n], shared.as_ref().clone())?);
                    }
                    CacheDecision::Compute => {
                        let out = Arc::new(falvolt_tensor::kernels::matmul_dispatch(
                            a, w, m, k, n, hint,
                        ));
                        cache.fulfill(key, Arc::clone(&out));
                        return Ok(Tensor::from_vec(vec![m, n], out.as_ref().clone())?);
                    }
                    CacheDecision::Skip => {}
                }
            }
            let out = falvolt_tensor::kernels::matmul_dispatch(a, w, m, k, n, hint);
            return Ok(Tensor::from_vec(vec![m, n], out)?);
        }
        if m == 0 || n == 0 {
            return Ok(Tensor::from_vec(vec![m, n], Vec::new())?);
        }

        // Faulty path. Every column replays the hardware's quantized
        // accumulator chain (so the executor agrees with the structural
        // array simulation). Columns whose PE column is fault-free take a
        // maskless fast loop — served from the sweep-shared clean product
        // when available (fault-free columns cannot depend on the fault
        // map). Corruptible columns walk the merged event stream of nonzero
        // activations and masked positions, composing mask runs.
        let format = self.config.accumulator_format();
        let bypass = matches!(self.bypass, BypassPolicy::SkipFaulty);

        let clean_shared: Option<Arc<Vec<f32>>> = match cache {
            Some(cache) => {
                let key = product_key(
                    "quantized-clean",
                    a,
                    w,
                    m,
                    k,
                    n,
                    u64::from(format.total_bits()) << 8 | u64::from(format.frac_bits()),
                );
                match cache.lookup(key) {
                    CacheDecision::Hit(shared) => Some(shared),
                    CacheDecision::Compute => {
                        let full = Arc::new(quantized_clean_product(a, w, m, k, n, format));
                        cache.fulfill(key, Arc::clone(&full));
                        Some(full)
                    }
                    CacheDecision::Skip => None,
                }
            }
            None => None,
        };

        let (min_raw, max_raw) = (i64::from(format.min_raw()), i64::from(format.max_raw()));
        let compute_row =
            |i: usize, a_row: &[f32], out_row: &mut [f32], nz: &mut Vec<(usize, f32)>| {
                let clean_row = clean_shared.as_ref().map(|v| &v[i * n..(i + 1) * n]);
                // Event skip-list: the nonzero activations of this row, resolved
                // once and reused by every output column (the seed re-scanned
                // all k activations for each of the n columns). The buffer is
                // caller-owned scratch, reused across the rows of a panel.
                nz.clear();
                nz.extend(a_row.iter().copied().enumerate().filter(|&(_, v)| v != 0.0));
                for (j, out_elem) in out_row.iter_mut().enumerate() {
                    if plan.column_is_clean(j) {
                        if let Some(clean) = clean_row {
                            // Sweep-shared value of the identical maskless chain.
                            *out_elem = clean[j];
                            continue;
                        }
                        *out_elem = quantized_clean_element(nz, w, n, j, format, min_raw, max_raw);
                        continue;
                    }
                    *out_elem = if self.composed_chains {
                        faulty_column_composed(
                            plan.fold_masked(j),
                            nz,
                            w,
                            n,
                            j,
                            format,
                            min_raw,
                            max_raw,
                            bypass,
                        )
                    } else {
                        faulty_column_replay(&plan, j, a_row, w, n, format, bypass)
                    };
                }
            };

        let mut out = vec![0.0f32; m * n];
        for_each_row_panel(a, &mut out, m, k, n, compute_row);
        Ok(Tensor::from_vec(vec![m, n], out)?)
    }

    /// Reference clean product computed in floating point (no quantization,
    /// no faults) — used by tests and by callers that need the ideal output.
    ///
    /// # Errors
    ///
    /// Returns a tensor error for invalid matrix shapes.
    pub fn clean_matmul(&self, activations: &Tensor, weights: &Tensor) -> Result<Tensor> {
        Ok(falvolt_tensor::ops::matmul(activations, weights)?)
    }
}

/// Runs `row_fn` over every output row of an `m x n` product — serially
/// below the parallel work threshold (tiny per-layer products, and
/// nested-parallel scenario workers, skip the fan-out machinery), otherwise
/// in row panels across threads (rows are embarrassingly parallel: fault
/// application is per-output-element). Each call receives the row index, the
/// row's activation slice and a per-panel scratch buffer for nonzero lists.
fn for_each_row_panel<F>(a: &[f32], out: &mut [f32], m: usize, k: usize, n: usize, row_fn: F)
where
    F: Fn(usize, &[f32], &mut [f32], &mut Vec<(usize, f32)>) + Sync,
{
    let threads = rayon::current_num_threads();
    if threads <= 1 || m * n * k < PARALLEL_ELEMENT_THRESHOLD {
        let mut scratch = Vec::new();
        for (i, out_row) in out.chunks_mut(n).enumerate() {
            row_fn(i, &a[i * k..(i + 1) * k], out_row, &mut scratch);
        }
        return;
    }
    let rows_per_panel = m.div_ceil(threads * 2).max(1);
    out.par_chunks_mut(rows_per_panel * n)
        .enumerate()
        .for_each(|(panel, out_panel)| {
            let row0 = panel * rows_per_panel;
            let mut scratch = Vec::new();
            for (r, out_row) in out_panel.chunks_mut(n).enumerate() {
                row_fn(
                    row0 + r,
                    &a[(row0 + r) * k..(row0 + r + 1) * k],
                    out_row,
                    &mut scratch,
                );
            }
        });
}

/// Stable tag of a hint for cache keying (the dispatch decision is a pure
/// function of the operand and the hint, so the hint is part of the key).
fn hint_tag(hint: MatmulHint) -> u64 {
    match hint {
        MatmulHint::Auto => 0,
        MatmulHint::Dense => 1,
        MatmulHint::Spikes => 2,
    }
}

/// Content key of one product under one execution regime (`tag`).
fn product_key(tag: &str, a: &[f32], w: &[f32], m: usize, k: usize, n: usize, extra: u64) -> u128 {
    let mut fp = Fingerprint::new();
    fp.write_str(tag);
    fp.write_dims(&[m, k, n]);
    fp.write_u64(extra);
    fp.write_f32s(a);
    fp.write_f32s(w);
    fp.finish()
}

/// One element of the maskless quantized accumulator chain: identical to the
/// fault-free fold of the faulty path (quantize-and-saturate on raw words,
/// zero contributions skipped — a zero leaves the clamped accumulator
/// unchanged).
#[allow(clippy::too_many_arguments)]
fn quantized_clean_element(
    nonzero: &[(usize, f32)],
    w: &[f32],
    n: usize,
    j: usize,
    format: QFormat,
    min_raw: i64,
    max_raw: i64,
) -> f32 {
    let mut acc = 0i64;
    for &(p, a_ip) in nonzero {
        let q = i64::from(format.quantize(a_ip * w[p * n + j]));
        acc = (acc + q).clamp(min_raw, max_raw);
    }
    format.dequantize(acc as i32)
}

/// The full maskless quantized product (every column treated as clean) — the
/// sweep-shared value that any scenario's fault-free columns can be copied
/// from. Row-parallel like the faulty path.
fn quantized_clean_product(
    a: &[f32],
    w: &[f32],
    m: usize,
    k: usize,
    n: usize,
    format: QFormat,
) -> Vec<f32> {
    let (min_raw, max_raw) = (i64::from(format.min_raw()), i64::from(format.max_raw()));
    let mut out = vec![0.0f32; m * n];
    for_each_row_panel(a, &mut out, m, k, n, |_, a_row, out_row, nz| {
        nz.clear();
        nz.extend(a_row.iter().copied().enumerate().filter(|&(_, v)| v != 0.0));
        for (j, out_elem) in out_row.iter_mut().enumerate() {
            *out_elem = quantized_clean_element(nz, w, n, j, format, min_raw, max_raw);
        }
    });
    out
}

/// Applies a composed mask pair to a raw accumulator word — exactly
/// [`PeMasks::apply`] on a [`Fixed`] carrying that raw (the accumulator is
/// kept clamped into the format's range, so `from_raw`'s clamp is a no-op).
fn apply_masks_raw(acc: i64, masks: PeMasks, format: QFormat) -> i64 {
    i64::from(masks.apply(Fixed::from_raw(acc as i32, format)).raw())
}

/// Faulty column via the composed event walk: merge the row's nonzero
/// activations with the fold's masked positions in `p` order (add before
/// mask at equal positions, exactly the original loop's order) and collapse
/// every run of masks between two adds into one composed pair. The
/// accumulator lives as a raw word with the same quantize-and-saturate chain
/// the [`Fixed`] arithmetic performs (format bounds hoisted by the caller).
#[allow(clippy::too_many_arguments)]
fn faulty_column_composed(
    masked: &[(u32, PeMasks)],
    nonzero: &[(usize, f32)],
    w: &[f32],
    n: usize,
    j: usize,
    format: QFormat,
    min_raw: i64,
    max_raw: i64,
    bypass: bool,
) -> f32 {
    let mut acc = 0i64;
    let mut mi = 0usize;
    if bypass {
        // Bypassed PEs contribute nothing and corrupt nothing: the product
        // reduces to the nonzero activations whose position is unmasked.
        for &(p, a_ip) in nonzero {
            while mi < masked.len() && (masked[mi].0 as usize) < p {
                mi += 1;
            }
            if mi < masked.len() && masked[mi].0 as usize == p {
                continue;
            }
            let q = i64::from(format.quantize(a_ip * w[p * n + j]));
            acc = (acc + q).clamp(min_raw, max_raw);
        }
        return format.dequantize(acc as i32);
    }
    for &(p, a_ip) in nonzero {
        // Compose and apply every mask strictly before this add. Masks ahead
        // of the first nonzero act on the zero accumulator, exactly as the
        // replayed chain does.
        if mi < masked.len() && (masked[mi].0 as usize) < p {
            let mut composed = masked[mi].1;
            mi += 1;
            while mi < masked.len() && (masked[mi].0 as usize) < p {
                composed = composed.then(masked[mi].1);
                mi += 1;
            }
            acc = apply_masks_raw(acc, composed, format);
        }
        let q = i64::from(format.quantize(a_ip * w[p * n + j]));
        acc = (acc + q).clamp(min_raw, max_raw);
    }
    // Tail: masks at and after the last add (an add at position p is masked
    // by position p's own PE after the accumulation step).
    if mi < masked.len() {
        let mut composed = masked[mi].1;
        mi += 1;
        while mi < masked.len() {
            composed = composed.then(masked[mi].1);
            mi += 1;
        }
        acc = apply_masks_raw(acc, composed, format);
    }
    format.dequantize(acc as i32)
}

/// Faulty column via the full `k`-step replay (the pre-composition engine):
/// every accumulation step looks up and applies its mask, zero activations
/// included. Kept as the reference for bit-identity tests and benchmarks.
fn faulty_column_replay(
    plan: &FoldPlan,
    j: usize,
    a_row: &[f32],
    w: &[f32],
    n: usize,
    format: QFormat,
    bypass: bool,
) -> f32 {
    let fold = plan.fold_masks(j);
    let mut acc = Fixed::zero(format);
    for (p, &a_ip) in a_row.iter().enumerate() {
        let masks = fold[p];
        if bypass && masks.is_some() {
            continue;
        }
        if a_ip != 0.0 {
            let contribution = Fixed::from_f32(a_ip * w[p * n + j], format);
            acc = acc.saturating_add(contribution);
        }
        if let Some(masks) = masks {
            acc = masks.apply(acc);
        }
    }
    acc.to_f32()
}

/// Precomputed fault state for one matrix product: which PE masks apply to
/// every `(k, column-fold)` pair, hoisted out of the per-element loops.
///
/// Weight element `(p, j)` resides in PE `(p mod rows, j mod cols)`, so the
/// mask chain of an output column depends only on `j mod cols`. The plan
/// stores, for each of the `cols` folds, a `k`-long mask vector (resolving
/// the `p mod rows` indirection once), a per-fold cleanliness flag used to
/// fast-path unaffected columns, and the *sparse* list of masked positions
/// that the composed event walk merges with each row's nonzero activations.
///
/// # Example
///
/// ```
/// use falvolt_systolic::executor::FoldPlan;
/// use falvolt_systolic::{FaultMap, SystolicConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let config = SystolicConfig::new(4, 4)?;
/// let plan = FoldPlan::new(&config, &FaultMap::new(config), 16);
/// assert!(!plan.any_fault());
/// assert!(plan.column_is_clean(7));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct FoldPlan {
    /// `cols * k` masks, laid out fold-major so one column's chain is
    /// contiguous: entry `fold * k + p`. Only materialised when the replay
    /// path needs it ([`FoldPlan::new`]); the composed walk builds plans
    /// with [`FoldPlan::without_replay_chains`], whose construction cost is
    /// O(faults * k / rows) instead of O(cols * k) — the dense chain was the
    /// dominant per-product setup cost for deep fully connected layers.
    masks: Vec<Option<PeMasks>>,
    /// Per-fold sparse view of the chain: the `(p, masks)` pairs where a
    /// mask exists, in increasing `p`. `(#faulty rows of the fold) *
    /// ceil(k / rows)` entries — what makes the composed walk O(nnz +
    /// masked) instead of O(k).
    masked: Vec<Vec<(u32, PeMasks)>>,
    /// Per-fold flag: `true` when no PE of that grid column masks any of the
    /// `k` chain positions.
    fold_clean: Vec<bool>,
    k: usize,
    cols: usize,
    any_fault: bool,
    has_replay_chains: bool,
}

impl FoldPlan {
    /// Builds the full plan (sparse masked lists *and* the dense replay
    /// chains) for products with inner dimension `k` on `config`'s grid
    /// under `fault_map`.
    pub fn new(config: &SystolicConfig, fault_map: &FaultMap, k: usize) -> Self {
        Self::build(config, fault_map, k, true)
    }

    /// Builds the plan without the dense replay chains — all the composed
    /// event walk and the clean-column fast paths need.
    /// [`FoldPlan::fold_masks`] panics on such a plan.
    pub fn without_replay_chains(config: &SystolicConfig, fault_map: &FaultMap, k: usize) -> Self {
        Self::build(config, fault_map, k, false)
    }

    fn build(
        config: &SystolicConfig,
        fault_map: &FaultMap,
        k: usize,
        with_replay_chains: bool,
    ) -> Self {
        let rows = config.rows();
        let cols = config.cols();
        let any_fault = !fault_map.is_empty();
        let mut masked = vec![Vec::new(); cols];
        let mut fold_clean = vec![true; cols];
        if any_fault {
            // Unfold each faulty PE to its chain positions: weight row p maps
            // to PE row `p mod rows`, so PE (r, c) masks positions r, r +
            // rows, ... of fold c. Distinct PEs of one column never collide
            // on a position, so a sort yields the increasing-p walk order.
            for pe in fault_map.faulty_pes() {
                let masks = fault_map
                    .masks(pe)
                    .expect("faulty_pes() only yields masked PEs");
                let mut p = pe.row;
                while p < k {
                    masked[pe.col].push((p as u32, masks));
                    p += rows;
                }
            }
            for (fold, list) in masked.iter_mut().enumerate() {
                list.sort_unstable_by_key(|&(p, _)| p);
                // A faulty PE whose row exceeds k masks nothing: the fold
                // stays clean for this product, exactly as the dense chain
                // (all-None) reports.
                fold_clean[fold] = list.is_empty();
            }
        }
        let masks = if with_replay_chains && any_fault {
            let mut dense = vec![None; cols * k];
            for (fold, list) in masked.iter().enumerate() {
                let chain = &mut dense[fold * k..(fold + 1) * k];
                for &(p, pe_masks) in list {
                    chain[p as usize] = Some(pe_masks);
                }
            }
            dense
        } else if with_replay_chains {
            vec![None; cols * k]
        } else {
            Vec::new()
        };
        Self {
            masks,
            masked,
            fold_clean,
            k,
            cols,
            any_fault,
            has_replay_chains: with_replay_chains,
        }
    }

    /// `true` when the fault map holds at least one fault.
    pub fn any_fault(&self) -> bool {
        self.any_fault
    }

    /// `true` when output column `j` cannot be corrupted (its PE column holds
    /// no faulty PE masking a chain position).
    pub fn column_is_clean(&self, j: usize) -> bool {
        self.fold_clean[j % self.cols]
    }

    /// The `k`-long mask chain of output column `j`.
    ///
    /// # Panics
    ///
    /// Panics when the plan was built with
    /// [`FoldPlan::without_replay_chains`].
    pub fn fold_masks(&self, j: usize) -> &[Option<PeMasks>] {
        assert!(
            self.has_replay_chains,
            "replay chains were not built; construct the plan with FoldPlan::new"
        );
        let fold = j % self.cols;
        &self.masks[fold * self.k..(fold + 1) * self.k]
    }

    /// The sparse masked positions of output column `j`, in increasing `p`.
    pub fn fold_masked(&self, j: usize) -> &[(u32, PeMasks)] {
        &self.masked[j % self.cols]
    }
}

fn matrix_dims(t: &Tensor) -> Result<(usize, usize)> {
    if t.ndim() != 2 {
        return Err(SystolicError::Tensor(TensorError::RankMismatch {
            expected: 2,
            actual: t.ndim(),
        }));
    }
    Ok((t.shape()[0], t.shape()[1]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Fault, PeCoord, StuckAt};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn config() -> SystolicConfig {
        SystolicConfig::new(4, 4).unwrap()
    }

    fn max_abs_diff(a: &Tensor, b: &Tensor) -> f32 {
        a.data()
            .iter()
            .zip(b.data())
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f32::max)
    }

    #[test]
    fn fault_free_array_matches_float_matmul_within_resolution() {
        let config = config();
        let executor = SystolicExecutor::new(config, FaultMap::new(config));
        let mut rng = StdRng::seed_from_u64(2);
        let a = falvolt_tensor::init::uniform(&[5, 7], 0.0, 1.0, &mut rng);
        let b = falvolt_tensor::init::uniform(&[7, 6], -0.5, 0.5, &mut rng);
        let faulty = executor.matmul(&a, &b).unwrap();
        let clean = executor.clean_matmul(&a, &b).unwrap();
        // Each of the 7 accumulation steps quantizes to 1/256 resolution.
        assert!(max_abs_diff(&faulty, &clean) < 7.0 / 256.0 + 1e-4);
    }

    #[test]
    fn binary_spike_inputs_are_exact_for_small_weights() {
        // With binary inputs and weights on the fixed-point lattice the
        // systolic result is exact.
        let config = config();
        let executor = SystolicExecutor::new(config, FaultMap::new(config));
        let a = Tensor::from_vec(vec![2, 4], vec![1.0, 0.0, 1.0, 1.0, 0.0, 1.0, 0.0, 1.0]).unwrap();
        let b = Tensor::from_fn(&[4, 3], |i| (i % 5) as f32 * 0.25);
        let faulty = executor.matmul(&a, &b).unwrap();
        let clean = executor.clean_matmul(&a, &b).unwrap();
        assert_eq!(faulty.data(), clean.data());
    }

    #[test]
    fn stuck_at_one_msb_corrupts_affected_columns_only() {
        let config = config();
        // Fault in PE (0, 1): affects output columns j with j % 4 == 1.
        let fault_map = FaultMap::from_faults(
            config,
            vec![Fault::new(PeCoord::new(0, 1), 15, StuckAt::One)],
        )
        .unwrap();
        let executor = SystolicExecutor::new(config, fault_map);
        let a = Tensor::ones(&[1, 4]);
        let b = Tensor::full(&[4, 4], 0.5);
        let out = executor.matmul(&a, &b).unwrap();
        let clean = executor.clean_matmul(&a, &b).unwrap();
        for j in 0..4 {
            let diff = (out.get(&[0, j]) - clean.get(&[0, j])).abs();
            if j == 1 {
                assert!(diff > 10.0, "column 1 must be corrupted, diff {diff}");
            } else {
                assert!(diff < 1e-3, "column {j} must be clean, diff {diff}");
            }
        }
    }

    #[test]
    fn stuck_at_zero_lsb_is_mild() {
        let config = config();
        let fault_map = FaultMap::from_faults(
            config,
            vec![Fault::new(PeCoord::new(0, 0), 0, StuckAt::Zero)],
        )
        .unwrap();
        let executor = SystolicExecutor::new(config, fault_map);
        let a = Tensor::ones(&[1, 4]);
        let b = Tensor::full(&[4, 4], 0.5);
        let out = executor.matmul(&a, &b).unwrap();
        let clean = executor.clean_matmul(&a, &b).unwrap();
        // LSB stuck-at-0 can change each pass by at most one resolution step.
        assert!(max_abs_diff(&out, &clean) <= 4.0 / 256.0 + 1e-6);
    }

    #[test]
    fn bypass_skips_faulty_contribution_instead_of_corrupting() {
        let config = config();
        let fault_map = FaultMap::from_faults(
            config,
            vec![Fault::new(PeCoord::new(2, 1), 15, StuckAt::One)],
        )
        .unwrap();
        let executor = SystolicExecutor::with_bypass(config, fault_map, BypassPolicy::SkipFaulty);
        let a = Tensor::ones(&[1, 4]);
        let b = Tensor::full(&[4, 4], 0.5);
        let out = executor.matmul(&a, &b).unwrap();
        // Column 1 loses the contribution of k = 2 (weight 0.5): 2.0 -> 1.5.
        assert!((out.get(&[0, 1]) - 1.5).abs() < 1e-3);
        // Other columns unaffected.
        assert!((out.get(&[0, 0]) - 2.0).abs() < 1e-3);
        assert!((out.get(&[0, 3]) - 2.0).abs() < 1e-3);
    }

    #[test]
    fn weight_folding_reuses_faulty_pe_across_tiles() {
        // K = 8 on a 4-row array: rows 0..4 and 4..8 share PEs. A fault in
        // PE (0, 0) must therefore corrupt contributions from k = 0 and k = 4.
        let config = config();
        let fault_map = FaultMap::from_faults(
            config,
            vec![Fault::new(PeCoord::new(0, 0), 15, StuckAt::One)],
        )
        .unwrap();
        let executor = SystolicExecutor::with_bypass(config, fault_map, BypassPolicy::SkipFaulty);
        let a = Tensor::ones(&[1, 8]);
        let b = Tensor::full(&[8, 4], 0.5);
        let out = executor.matmul(&a, &b).unwrap();
        // Column 0 loses k=0 and k=4 contributions: 4.0 - 1.0 = 3.0.
        assert!((out.get(&[0, 0]) - 3.0).abs() < 1e-3);
    }

    #[test]
    fn zero_width_products_are_empty_not_panics() {
        let config = config();
        let fault_map = FaultMap::from_faults(
            config,
            vec![Fault::new(PeCoord::new(0, 0), 15, StuckAt::One)],
        )
        .unwrap();
        let executor = SystolicExecutor::new(config, fault_map);
        let a = Tensor::zeros(&[3, 4]);
        let b = Tensor::zeros(&[4, 0]);
        let out = executor.matmul(&a, &b).unwrap();
        assert_eq!(out.shape(), &[3, 0]);
        let empty_rows = executor.matmul(&Tensor::zeros(&[0, 4]), &Tensor::zeros(&[4, 2]));
        assert_eq!(empty_rows.unwrap().shape(), &[0, 2]);
    }

    #[test]
    fn faulty_path_is_bit_identical_for_every_hint() {
        // Fault corruption must not depend on the operand-structure hint:
        // spike activations through a faulty array give the same bits whether
        // the caller declared them Dense, Spikes or left it to Auto.
        let config = config();
        let mut rng = StdRng::seed_from_u64(9);
        let fault_map =
            FaultMap::random_faulty_pes(&config, 3, 15, StuckAt::One, &mut rng).unwrap();
        let executor = SystolicExecutor::new(config, fault_map);
        let a = Tensor::from_fn(&[6, 9], |i| ((i % 5) == 0) as u8 as f32);
        let b = Tensor::from_fn(&[9, 7], |i| (i % 13) as f32 * 0.03 - 0.15);
        let dense = executor
            .matmul_hinted(&a, &b, falvolt_tensor::MatmulHint::Dense)
            .unwrap();
        for hint in [
            falvolt_tensor::MatmulHint::Auto,
            falvolt_tensor::MatmulHint::Spikes,
        ] {
            let out = executor.matmul_hinted(&a, &b, hint).unwrap();
            assert_eq!(out.data(), dense.data(), "hint {hint:?} changed bits");
        }
    }

    #[test]
    fn fault_free_path_dispatches_sparse_spikes_consistently() {
        let config = config();
        let executor = SystolicExecutor::new(config, FaultMap::new(config));
        // 10% binary density: Auto and Spikes take the event kernel.
        let a = Tensor::from_fn(&[8, 40], |i| ((i % 10) == 0) as u8 as f32);
        let b = Tensor::from_fn(&[40, 6], |i| (i % 7) as f32 * 0.11 - 0.3);
        let dense = executor
            .matmul_hinted(&a, &b, falvolt_tensor::MatmulHint::Dense)
            .unwrap();
        let auto = executor
            .matmul_hinted(&a, &b, falvolt_tensor::MatmulHint::Auto)
            .unwrap();
        for (x, y) in auto.data().iter().zip(dense.data()) {
            assert!((x - y).abs() < 1e-5, "{x} vs {y}");
        }
    }

    #[test]
    fn matmul_validates_shapes() {
        let config = config();
        let executor = SystolicExecutor::new(config, FaultMap::new(config));
        let a = Tensor::ones(&[2, 3]);
        let b = Tensor::ones(&[4, 2]);
        assert!(executor.matmul(&a, &b).is_err());
        let v = Tensor::ones(&[3]);
        assert!(executor.matmul(&v, &b).is_err());
    }

    #[test]
    fn set_fault_map_and_policy_take_effect() {
        let config = config();
        let mut executor = SystolicExecutor::new(config, FaultMap::new(config));
        let a = Tensor::ones(&[1, 4]);
        let b = Tensor::full(&[4, 4], 0.5);
        let clean = executor.matmul(&a, &b).unwrap();

        let fault_map = FaultMap::from_faults(
            config,
            vec![Fault::new(PeCoord::new(0, 0), 15, StuckAt::One)],
        )
        .unwrap();
        executor.set_fault_map(fault_map);
        let faulty = executor.matmul(&a, &b).unwrap();
        assert!(max_abs_diff(&clean, &faulty) > 1.0);

        executor.set_bypass_policy(BypassPolicy::SkipFaulty);
        assert_eq!(executor.bypass_policy(), BypassPolicy::SkipFaulty);
        let bypassed = executor.matmul(&a, &b).unwrap();
        assert!(max_abs_diff(&clean, &bypassed) <= 0.5 + 1e-3);
    }

    /// Random executors under every (composed, cached) regime must agree
    /// bit-for-bit with the replayed, uncached engine — including bypass.
    #[test]
    fn composed_and_cached_paths_are_bit_identical_to_replay() {
        let config = SystolicConfig::new(4, 6).unwrap();
        let mut rng = StdRng::seed_from_u64(17);
        for faulty_pes in [1usize, 3, 8] {
            for bypass in [BypassPolicy::None, BypassPolicy::SkipFaulty] {
                let fault_map = FaultMap::random_msb_faults(&config, faulty_pes, &mut rng).unwrap();
                // Mixed spike/real activations with zero rows and a k that
                // wraps the 4-row grid several times; m is large enough for
                // the executor to consult the product cache (hash gate).
                let a = Tensor::from_fn(&[40, 19], |i| match i % 6 {
                    0 => 1.0,
                    1 => -0.75,
                    _ => 0.0,
                });
                let b = Tensor::from_fn(&[19, 9], |i| (i % 17) as f32 * 0.06 - 0.4);

                let mut replay = SystolicExecutor::with_bypass(config, fault_map.clone(), bypass);
                replay.set_composed_mask_chains(false);
                let reference = replay.matmul(&a, &b).unwrap();

                let composed = SystolicExecutor::with_bypass(config, fault_map.clone(), bypass);
                assert_eq!(
                    composed.matmul(&a, &b).unwrap().data(),
                    reference.data(),
                    "composed chains changed bits ({faulty_pes} PEs, {bypass:?})"
                );

                let shared = Arc::new(ProductCache::new());
                let mut cached = SystolicExecutor::with_bypass(config, fault_map, bypass);
                cached.set_product_cache(Some(Arc::clone(&shared)));
                // Three calls: skip, promote-and-fulfill, hit — all equal.
                for call in 0..3 {
                    assert_eq!(
                        cached.matmul(&a, &b).unwrap().data(),
                        reference.data(),
                        "cached call {call} changed bits ({faulty_pes} PEs, {bypass:?})"
                    );
                }
                assert!(
                    shared.hits() >= 1,
                    "the cached path was never exercised ({faulty_pes} PEs, {bypass:?})"
                );
            }
        }
    }

    #[test]
    fn fold_plan_masked_lists_match_dense_chain() {
        let config = SystolicConfig::new(4, 4).unwrap();
        let mut rng = StdRng::seed_from_u64(23);
        let fault_map =
            FaultMap::random_faulty_pes(&config, 5, 15, StuckAt::One, &mut rng).unwrap();
        let plan = FoldPlan::new(&config, &fault_map, 22);
        for j in 0..8 {
            let dense = plan.fold_masks(j);
            let sparse = plan.fold_masked(j);
            let from_dense: Vec<(u32, PeMasks)> = dense
                .iter()
                .enumerate()
                .filter_map(|(p, m)| m.map(|m| (p as u32, m)))
                .collect();
            assert_eq!(sparse, from_dense.as_slice(), "fold of column {j}");
            assert_eq!(plan.column_is_clean(j), sparse.is_empty());
        }
    }

    #[test]
    fn mask_composition_is_exact_and_idempotent() {
        let q = QFormat::accumulator_default();
        let m1 = PeMasks {
            and_mask: !(1u32 << 3),
            or_mask: 1 << 15,
        };
        let m2 = PeMasks {
            and_mask: !(1u32 << 15),
            or_mask: 0b101,
        };
        for raw in [-30000i32, -1, 0, 1, 517, 32767] {
            let x = Fixed::from_raw(raw, q);
            let sequential = m2.apply(m1.apply(x));
            let composed = m1.then(m2).apply(x);
            assert_eq!(sequential, composed, "raw {raw}");
        }
        let twice = m1.then(m1);
        assert_eq!(twice, m1, "mask pairs are idempotent under composition");
    }
}
