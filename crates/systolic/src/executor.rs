//! Faulty matrix-product executor.
//!
//! The SNN layers lower their linear algebra (convolutions via im2col, fully
//! connected layers directly) to matrix products `activations x weights`. The
//! executor replays those products through the systolic array: every partial
//! sum of an output element passes through the accumulator of the PE that
//! stores the corresponding weight, where the PE's stuck-at faults corrupt it.
//!
//! Execution is structured around a [`FoldPlan`]: all per-`(k, column-fold)`
//! fault state is resolved once per product, output columns whose PE column
//! is fault-free fold to the clean blocked kernel
//! ([`falvolt_tensor::kernels`]), and the remaining corruptible columns are
//! evaluated with the quantized accumulator chain, parallelised over output
//! rows (fault application is per-output-element, so rows are independent).

use crate::fault_map::PeMasks;
use crate::{FaultMap, PeCoord, Result, SystolicConfig, SystolicError, WeightMapping};
use falvolt_fixedpoint::Fixed;
use falvolt_tensor::{MatmulHint, Tensor, TensorError};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Work threshold (in accumulation steps, `m * n * k`) below which the
/// faulty path stays serial — tiny per-layer products are issued constantly
/// during inference, often from already-parallel scenario workers.
const PARALLEL_ELEMENT_THRESHOLD: usize = 1 << 15;

/// How the executor treats faulty PEs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum BypassPolicy {
    /// Faulty PEs stay in the datapath and corrupt partial sums (the
    /// vulnerability-analysis setting).
    #[default]
    None,
    /// Faulty PEs are bypassed through the multiplexer of Figure 3b: their
    /// weight contribution is skipped and their faults never reach the
    /// partial sum (the fault-aware-pruning setting).
    SkipFaulty,
}

/// Executes matrix products on the (possibly faulty) systolic array.
///
/// # Example
///
/// ```
/// use falvolt_systolic::executor::BypassPolicy;
/// use falvolt_systolic::{FaultMap, SystolicConfig, SystolicExecutor};
/// use falvolt_tensor::Tensor;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let config = SystolicConfig::new(4, 4)?;
/// let executor = SystolicExecutor::new(config, FaultMap::new(config));
/// let a = Tensor::ones(&[2, 4]);
/// let b = Tensor::full(&[4, 3], 0.25);
/// let out = executor.matmul(&a, &b)?;
/// // With no faults the array reproduces the exact product (within
/// // fixed-point resolution).
/// assert!((out.get(&[0, 0]) - 1.0).abs() < 1e-2);
/// assert_eq!(executor.bypass_policy(), BypassPolicy::None);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystolicExecutor {
    config: SystolicConfig,
    fault_map: FaultMap,
    mapping: WeightMapping,
    bypass: BypassPolicy,
}

impl SystolicExecutor {
    /// Creates an executor for a configuration and fault map, with faults
    /// active in the datapath ([`BypassPolicy::None`]).
    pub fn new(config: SystolicConfig, fault_map: FaultMap) -> Self {
        let mapping = WeightMapping::new(&config);
        Self {
            config,
            fault_map,
            mapping,
            bypass: BypassPolicy::None,
        }
    }

    /// Creates an executor with an explicit bypass policy.
    pub fn with_bypass(config: SystolicConfig, fault_map: FaultMap, bypass: BypassPolicy) -> Self {
        let mut e = Self::new(config, fault_map);
        e.bypass = bypass;
        e
    }

    /// The systolic configuration.
    pub fn config(&self) -> &SystolicConfig {
        &self.config
    }

    /// The installed fault map.
    pub fn fault_map(&self) -> &FaultMap {
        &self.fault_map
    }

    /// The weight-stationary mapping used by this executor.
    pub fn mapping(&self) -> WeightMapping {
        self.mapping
    }

    /// The current bypass policy.
    pub fn bypass_policy(&self) -> BypassPolicy {
        self.bypass
    }

    /// Changes the bypass policy.
    pub fn set_bypass_policy(&mut self, bypass: BypassPolicy) {
        self.bypass = bypass;
    }

    /// Replaces the fault map (e.g. to evaluate several chips with one
    /// executor).
    pub fn set_fault_map(&mut self, fault_map: FaultMap) {
        self.fault_map = fault_map;
    }

    /// Computes `activations x weights` on the systolic array with
    /// [`MatmulHint::Auto`]; see [`SystolicExecutor::matmul_hinted`].
    ///
    /// # Errors
    ///
    /// Returns a tensor error for non-matrix inputs or mismatched inner
    /// dimensions.
    pub fn matmul(&self, activations: &Tensor, weights: &Tensor) -> Result<Tensor> {
        self.matmul_hinted(activations, weights, MatmulHint::Auto)
    }

    /// Computes `activations x weights` on the systolic array.
    ///
    /// `activations` has shape `[M, K]` (rows of spikes or activations) and
    /// `weights` has shape `[K, N]`. Weight element `(k, n)` resides in PE
    /// `(k mod rows, n mod cols)`; the partial sum of output `(m, n)` passes
    /// through that PE's accumulator, where its stuck-at faults are applied.
    ///
    /// `hint` steers the fault-free fast path onto the event-driven sparse
    /// kernel for spike activations. The faulty path ignores it: fault
    /// corruption replays the exact quantized accumulator chain regardless,
    /// so fault-injection results are bit-identical whatever the hint — it
    /// still skips zero activations via per-row nonzero lists resolved once
    /// per row instead of once per `(row, column)` pair.
    ///
    /// # Errors
    ///
    /// Returns a tensor error for non-matrix inputs or mismatched inner
    /// dimensions.
    pub fn matmul_hinted(
        &self,
        activations: &Tensor,
        weights: &Tensor,
        hint: MatmulHint,
    ) -> Result<Tensor> {
        let (m, k) = matrix_dims(activations)?;
        let (k2, n) = matrix_dims(weights)?;
        if k != k2 {
            return Err(SystolicError::Tensor(TensorError::MatmulDimMismatch {
                left_cols: k,
                right_rows: k2,
            }));
        }
        let a = activations.data();
        let w = weights.data();

        // Hoist all per-(k, col-fold) fault state out of the element loops.
        let plan = FoldPlan::new(&self.config, &self.fault_map, k);

        // Fast path: with no fault anywhere in the array the datapath cannot
        // corrupt anything, so the product folds to the kernel layer's
        // structure-aware dispatch (blocked dense, or gather-accumulate for
        // sparse spike activations). (This also drops the hardware's
        // fixed-point quantization — an ideal-hardware idealisation bounded
        // by k * resolution; only faulty maps replay the quantized datapath
        // below.)
        if !plan.any_fault() {
            let out = falvolt_tensor::kernels::matmul_dispatch(a, w, m, k, n, hint);
            return Ok(Tensor::from_vec(vec![m, n], out)?);
        }
        if m == 0 || n == 0 {
            return Ok(Tensor::from_vec(vec![m, n], Vec::new())?);
        }

        // Faulty path. Every column replays the hardware's quantized
        // accumulator chain (so the executor agrees with the structural
        // array simulation), but columns whose PE column is fault-free take
        // a maskless fast loop with no per-step mask lookup or application.
        let format = self.config.accumulator_format();
        let (min_raw, max_raw) = (i64::from(format.min_raw()), i64::from(format.max_raw()));
        let bypass = matches!(self.bypass, BypassPolicy::SkipFaulty);

        let compute_row = |a_row: &[f32], out_row: &mut [f32]| {
            // Event skip-list: the nonzero activations of this row, resolved
            // once and reused by every clean output column (the seed
            // re-scanned all k activations for each of the n columns).
            let nonzero: Vec<(usize, f32)> = a_row
                .iter()
                .copied()
                .enumerate()
                .filter(|&(_, v)| v != 0.0)
                .collect();
            for (j, out_elem) in out_row.iter_mut().enumerate() {
                if plan.column_is_clean(j) {
                    // Fault-free fold: same quantize-and-saturate chain on
                    // raw words, no mask checks, zero steps skipped exactly
                    // as before (a zero contribution leaves the clamped
                    // accumulator unchanged).
                    let mut acc = 0i64;
                    for &(p, a_ip) in &nonzero {
                        let q = i64::from(format.quantize(a_ip * w[p * n + j]));
                        acc = (acc + q).clamp(min_raw, max_raw);
                    }
                    *out_elem = format.dequantize(acc as i32);
                    continue;
                }
                let fold = plan.fold_masks(j);
                let mut acc = Fixed::zero(format);
                for (p, &a_ip) in a_row.iter().enumerate() {
                    let masks = fold[p];
                    if bypass && masks.is_some() {
                        continue;
                    }
                    if a_ip != 0.0 {
                        let contribution = Fixed::from_f32(a_ip * w[p * n + j], format);
                        acc = acc.saturating_add(contribution);
                    }
                    if let Some(masks) = masks {
                        acc = masks.apply(acc);
                    }
                }
                *out_elem = acc.to_f32();
            }
        };

        let mut out = vec![0.0f32; m * n];
        let threads = rayon::current_num_threads();
        if threads <= 1 || m * n * k < PARALLEL_ELEMENT_THRESHOLD {
            // Tiny per-layer products (and nested-parallel callers) skip the
            // fan-out machinery, mirroring the kernel layer's cutoff.
            for (i, out_row) in out.chunks_mut(n).enumerate() {
                compute_row(&a[i * k..(i + 1) * k], out_row);
            }
        } else {
            let rows_per_panel = m.div_ceil(threads * 2).max(1);
            // Fault application is per-output-element: rows are
            // embarrassingly parallel, so panels of rows go wide.
            out.par_chunks_mut(rows_per_panel * n)
                .enumerate()
                .for_each(|(panel, out_panel)| {
                    let row0 = panel * rows_per_panel;
                    for (r, out_row) in out_panel.chunks_mut(n).enumerate() {
                        compute_row(&a[(row0 + r) * k..(row0 + r + 1) * k], out_row);
                    }
                });
        }
        Ok(Tensor::from_vec(vec![m, n], out)?)
    }

    /// Reference clean product computed in floating point (no quantization,
    /// no faults) — used by tests and by callers that need the ideal output.
    ///
    /// # Errors
    ///
    /// Returns a tensor error for invalid matrix shapes.
    pub fn clean_matmul(&self, activations: &Tensor, weights: &Tensor) -> Result<Tensor> {
        Ok(falvolt_tensor::ops::matmul(activations, weights)?)
    }
}

/// Precomputed fault state for one matrix product: which PE masks apply to
/// every `(k, column-fold)` pair, hoisted out of the per-element loops.
///
/// Weight element `(p, j)` resides in PE `(p mod rows, j mod cols)`, so the
/// mask chain of an output column depends only on `j mod cols`. The plan
/// stores, for each of the `cols` folds, a `k`-long mask vector (resolving
/// the `p mod rows` indirection once), plus a per-fold cleanliness flag used
/// to fast-path unaffected columns onto the clean blocked kernel.
///
/// # Example
///
/// ```
/// use falvolt_systolic::executor::FoldPlan;
/// use falvolt_systolic::{FaultMap, SystolicConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let config = SystolicConfig::new(4, 4)?;
/// let plan = FoldPlan::new(&config, &FaultMap::new(config), 16);
/// assert!(!plan.any_fault());
/// assert!(plan.column_is_clean(7));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct FoldPlan {
    /// `cols * k` masks, laid out fold-major so one column's chain is
    /// contiguous: entry `fold * k + p`.
    masks: Vec<Option<PeMasks>>,
    /// Per-fold flag: `true` when no PE of that grid column is faulty.
    fold_clean: Vec<bool>,
    k: usize,
    cols: usize,
    any_fault: bool,
}

impl FoldPlan {
    /// Builds the plan for products with inner dimension `k` on `config`'s
    /// grid under `fault_map`.
    pub fn new(config: &SystolicConfig, fault_map: &FaultMap, k: usize) -> Self {
        let rows = config.rows();
        let cols = config.cols();
        let any_fault = !fault_map.is_empty();
        let mut masks = vec![None; cols * k];
        let mut fold_clean = vec![true; cols];
        if any_fault {
            // Resolve the grid once (rows * cols lookups), then unfold to k.
            let mut grid: Vec<Option<PeMasks>> = Vec::with_capacity(rows * cols);
            for r in 0..rows {
                for c in 0..cols {
                    grid.push(fault_map.masks(PeCoord::new(r, c)));
                }
            }
            for fold in 0..cols {
                let chain = &mut masks[fold * k..(fold + 1) * k];
                for (p, slot) in chain.iter_mut().enumerate() {
                    *slot = grid[(p % rows) * cols + fold];
                }
                fold_clean[fold] = chain.iter().all(Option::is_none);
            }
        }
        Self {
            masks,
            fold_clean,
            k,
            cols,
            any_fault,
        }
    }

    /// `true` when the fault map holds at least one fault.
    pub fn any_fault(&self) -> bool {
        self.any_fault
    }

    /// `true` when output column `j` cannot be corrupted (its PE column holds
    /// no faulty PE).
    pub fn column_is_clean(&self, j: usize) -> bool {
        self.fold_clean[j % self.cols]
    }

    /// The `k`-long mask chain of output column `j`.
    pub fn fold_masks(&self, j: usize) -> &[Option<PeMasks>] {
        let fold = j % self.cols;
        &self.masks[fold * self.k..(fold + 1) * self.k]
    }
}

fn matrix_dims(t: &Tensor) -> Result<(usize, usize)> {
    if t.ndim() != 2 {
        return Err(SystolicError::Tensor(TensorError::RankMismatch {
            expected: 2,
            actual: t.ndim(),
        }));
    }
    Ok((t.shape()[0], t.shape()[1]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Fault, StuckAt};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn config() -> SystolicConfig {
        SystolicConfig::new(4, 4).unwrap()
    }

    fn max_abs_diff(a: &Tensor, b: &Tensor) -> f32 {
        a.data()
            .iter()
            .zip(b.data())
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f32::max)
    }

    #[test]
    fn fault_free_array_matches_float_matmul_within_resolution() {
        let config = config();
        let executor = SystolicExecutor::new(config, FaultMap::new(config));
        let mut rng = StdRng::seed_from_u64(2);
        let a = falvolt_tensor::init::uniform(&[5, 7], 0.0, 1.0, &mut rng);
        let b = falvolt_tensor::init::uniform(&[7, 6], -0.5, 0.5, &mut rng);
        let faulty = executor.matmul(&a, &b).unwrap();
        let clean = executor.clean_matmul(&a, &b).unwrap();
        // Each of the 7 accumulation steps quantizes to 1/256 resolution.
        assert!(max_abs_diff(&faulty, &clean) < 7.0 / 256.0 + 1e-4);
    }

    #[test]
    fn binary_spike_inputs_are_exact_for_small_weights() {
        // With binary inputs and weights on the fixed-point lattice the
        // systolic result is exact.
        let config = config();
        let executor = SystolicExecutor::new(config, FaultMap::new(config));
        let a = Tensor::from_vec(vec![2, 4], vec![1.0, 0.0, 1.0, 1.0, 0.0, 1.0, 0.0, 1.0]).unwrap();
        let b = Tensor::from_fn(&[4, 3], |i| (i % 5) as f32 * 0.25);
        let faulty = executor.matmul(&a, &b).unwrap();
        let clean = executor.clean_matmul(&a, &b).unwrap();
        assert_eq!(faulty.data(), clean.data());
    }

    #[test]
    fn stuck_at_one_msb_corrupts_affected_columns_only() {
        let config = config();
        // Fault in PE (0, 1): affects output columns j with j % 4 == 1.
        let fault_map = FaultMap::from_faults(
            config,
            vec![Fault::new(PeCoord::new(0, 1), 15, StuckAt::One)],
        )
        .unwrap();
        let executor = SystolicExecutor::new(config, fault_map);
        let a = Tensor::ones(&[1, 4]);
        let b = Tensor::full(&[4, 4], 0.5);
        let out = executor.matmul(&a, &b).unwrap();
        let clean = executor.clean_matmul(&a, &b).unwrap();
        for j in 0..4 {
            let diff = (out.get(&[0, j]) - clean.get(&[0, j])).abs();
            if j == 1 {
                assert!(diff > 10.0, "column 1 must be corrupted, diff {diff}");
            } else {
                assert!(diff < 1e-3, "column {j} must be clean, diff {diff}");
            }
        }
    }

    #[test]
    fn stuck_at_zero_lsb_is_mild() {
        let config = config();
        let fault_map = FaultMap::from_faults(
            config,
            vec![Fault::new(PeCoord::new(0, 0), 0, StuckAt::Zero)],
        )
        .unwrap();
        let executor = SystolicExecutor::new(config, fault_map);
        let a = Tensor::ones(&[1, 4]);
        let b = Tensor::full(&[4, 4], 0.5);
        let out = executor.matmul(&a, &b).unwrap();
        let clean = executor.clean_matmul(&a, &b).unwrap();
        // LSB stuck-at-0 can change each pass by at most one resolution step.
        assert!(max_abs_diff(&out, &clean) <= 4.0 / 256.0 + 1e-6);
    }

    #[test]
    fn bypass_skips_faulty_contribution_instead_of_corrupting() {
        let config = config();
        let fault_map = FaultMap::from_faults(
            config,
            vec![Fault::new(PeCoord::new(2, 1), 15, StuckAt::One)],
        )
        .unwrap();
        let executor = SystolicExecutor::with_bypass(config, fault_map, BypassPolicy::SkipFaulty);
        let a = Tensor::ones(&[1, 4]);
        let b = Tensor::full(&[4, 4], 0.5);
        let out = executor.matmul(&a, &b).unwrap();
        // Column 1 loses the contribution of k = 2 (weight 0.5): 2.0 -> 1.5.
        assert!((out.get(&[0, 1]) - 1.5).abs() < 1e-3);
        // Other columns unaffected.
        assert!((out.get(&[0, 0]) - 2.0).abs() < 1e-3);
        assert!((out.get(&[0, 3]) - 2.0).abs() < 1e-3);
    }

    #[test]
    fn weight_folding_reuses_faulty_pe_across_tiles() {
        // K = 8 on a 4-row array: rows 0..4 and 4..8 share PEs. A fault in
        // PE (0, 0) must therefore corrupt contributions from k = 0 and k = 4.
        let config = config();
        let fault_map = FaultMap::from_faults(
            config,
            vec![Fault::new(PeCoord::new(0, 0), 15, StuckAt::One)],
        )
        .unwrap();
        let executor = SystolicExecutor::with_bypass(config, fault_map, BypassPolicy::SkipFaulty);
        let a = Tensor::ones(&[1, 8]);
        let b = Tensor::full(&[8, 4], 0.5);
        let out = executor.matmul(&a, &b).unwrap();
        // Column 0 loses k=0 and k=4 contributions: 4.0 - 1.0 = 3.0.
        assert!((out.get(&[0, 0]) - 3.0).abs() < 1e-3);
    }

    #[test]
    fn zero_width_products_are_empty_not_panics() {
        let config = config();
        let fault_map = FaultMap::from_faults(
            config,
            vec![Fault::new(PeCoord::new(0, 0), 15, StuckAt::One)],
        )
        .unwrap();
        let executor = SystolicExecutor::new(config, fault_map);
        let a = Tensor::zeros(&[3, 4]);
        let b = Tensor::zeros(&[4, 0]);
        let out = executor.matmul(&a, &b).unwrap();
        assert_eq!(out.shape(), &[3, 0]);
        let empty_rows = executor.matmul(&Tensor::zeros(&[0, 4]), &Tensor::zeros(&[4, 2]));
        assert_eq!(empty_rows.unwrap().shape(), &[0, 2]);
    }

    #[test]
    fn faulty_path_is_bit_identical_for_every_hint() {
        // Fault corruption must not depend on the operand-structure hint:
        // spike activations through a faulty array give the same bits whether
        // the caller declared them Dense, Spikes or left it to Auto.
        let config = config();
        let mut rng = StdRng::seed_from_u64(9);
        let fault_map =
            FaultMap::random_faulty_pes(&config, 3, 15, StuckAt::One, &mut rng).unwrap();
        let executor = SystolicExecutor::new(config, fault_map);
        let a = Tensor::from_fn(&[6, 9], |i| ((i % 5) == 0) as u8 as f32);
        let b = Tensor::from_fn(&[9, 7], |i| (i % 13) as f32 * 0.03 - 0.15);
        let dense = executor
            .matmul_hinted(&a, &b, falvolt_tensor::MatmulHint::Dense)
            .unwrap();
        for hint in [
            falvolt_tensor::MatmulHint::Auto,
            falvolt_tensor::MatmulHint::Spikes,
        ] {
            let out = executor.matmul_hinted(&a, &b, hint).unwrap();
            assert_eq!(out.data(), dense.data(), "hint {hint:?} changed bits");
        }
    }

    #[test]
    fn fault_free_path_dispatches_sparse_spikes_consistently() {
        let config = config();
        let executor = SystolicExecutor::new(config, FaultMap::new(config));
        // 10% binary density: Auto and Spikes take the event kernel.
        let a = Tensor::from_fn(&[8, 40], |i| ((i % 10) == 0) as u8 as f32);
        let b = Tensor::from_fn(&[40, 6], |i| (i % 7) as f32 * 0.11 - 0.3);
        let dense = executor
            .matmul_hinted(&a, &b, falvolt_tensor::MatmulHint::Dense)
            .unwrap();
        let auto = executor
            .matmul_hinted(&a, &b, falvolt_tensor::MatmulHint::Auto)
            .unwrap();
        for (x, y) in auto.data().iter().zip(dense.data()) {
            assert!((x - y).abs() < 1e-5, "{x} vs {y}");
        }
    }

    #[test]
    fn matmul_validates_shapes() {
        let config = config();
        let executor = SystolicExecutor::new(config, FaultMap::new(config));
        let a = Tensor::ones(&[2, 3]);
        let b = Tensor::ones(&[4, 2]);
        assert!(executor.matmul(&a, &b).is_err());
        let v = Tensor::ones(&[3]);
        assert!(executor.matmul(&v, &b).is_err());
    }

    #[test]
    fn set_fault_map_and_policy_take_effect() {
        let config = config();
        let mut executor = SystolicExecutor::new(config, FaultMap::new(config));
        let a = Tensor::ones(&[1, 4]);
        let b = Tensor::full(&[4, 4], 0.5);
        let clean = executor.matmul(&a, &b).unwrap();

        let fault_map = FaultMap::from_faults(
            config,
            vec![Fault::new(PeCoord::new(0, 0), 15, StuckAt::One)],
        )
        .unwrap();
        executor.set_fault_map(fault_map);
        let faulty = executor.matmul(&a, &b).unwrap();
        assert!(max_abs_diff(&clean, &faulty) > 1.0);

        executor.set_bypass_policy(BypassPolicy::SkipFaulty);
        assert_eq!(executor.bypass_policy(), BypassPolicy::SkipFaulty);
        let bypassed = executor.matmul(&a, &b).unwrap();
        assert!(max_abs_diff(&clean, &bypassed) <= 0.5 + 1e-3);
    }
}
