//! Faulty matrix-product executor.
//!
//! The SNN layers lower their linear algebra (convolutions via im2col, fully
//! connected layers directly) to matrix products `activations x weights`. The
//! executor replays those products through the systolic array: every partial
//! sum of an output element passes through the accumulator of the PE that
//! stores the corresponding weight, where the PE's stuck-at faults corrupt it.

use crate::fault_map::PeMasks;
use crate::{FaultMap, PeCoord, Result, SystolicConfig, SystolicError, WeightMapping};
use falvolt_fixedpoint::Fixed;
use falvolt_tensor::{Tensor, TensorError};
use serde::{Deserialize, Serialize};

/// How the executor treats faulty PEs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum BypassPolicy {
    /// Faulty PEs stay in the datapath and corrupt partial sums (the
    /// vulnerability-analysis setting).
    #[default]
    None,
    /// Faulty PEs are bypassed through the multiplexer of Figure 3b: their
    /// weight contribution is skipped and their faults never reach the
    /// partial sum (the fault-aware-pruning setting).
    SkipFaulty,
}

/// Executes matrix products on the (possibly faulty) systolic array.
///
/// # Example
///
/// ```
/// use falvolt_systolic::executor::BypassPolicy;
/// use falvolt_systolic::{FaultMap, SystolicConfig, SystolicExecutor};
/// use falvolt_tensor::Tensor;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let config = SystolicConfig::new(4, 4)?;
/// let executor = SystolicExecutor::new(config, FaultMap::new(config));
/// let a = Tensor::ones(&[2, 4]);
/// let b = Tensor::full(&[4, 3], 0.25);
/// let out = executor.matmul(&a, &b)?;
/// // With no faults the array reproduces the exact product (within
/// // fixed-point resolution).
/// assert!((out.get(&[0, 0]) - 1.0).abs() < 1e-2);
/// assert_eq!(executor.bypass_policy(), BypassPolicy::None);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystolicExecutor {
    config: SystolicConfig,
    fault_map: FaultMap,
    mapping: WeightMapping,
    bypass: BypassPolicy,
}

impl SystolicExecutor {
    /// Creates an executor for a configuration and fault map, with faults
    /// active in the datapath ([`BypassPolicy::None`]).
    pub fn new(config: SystolicConfig, fault_map: FaultMap) -> Self {
        let mapping = WeightMapping::new(&config);
        Self {
            config,
            fault_map,
            mapping,
            bypass: BypassPolicy::None,
        }
    }

    /// Creates an executor with an explicit bypass policy.
    pub fn with_bypass(config: SystolicConfig, fault_map: FaultMap, bypass: BypassPolicy) -> Self {
        let mut e = Self::new(config, fault_map);
        e.bypass = bypass;
        e
    }

    /// The systolic configuration.
    pub fn config(&self) -> &SystolicConfig {
        &self.config
    }

    /// The installed fault map.
    pub fn fault_map(&self) -> &FaultMap {
        &self.fault_map
    }

    /// The weight-stationary mapping used by this executor.
    pub fn mapping(&self) -> WeightMapping {
        self.mapping
    }

    /// The current bypass policy.
    pub fn bypass_policy(&self) -> BypassPolicy {
        self.bypass
    }

    /// Changes the bypass policy.
    pub fn set_bypass_policy(&mut self, bypass: BypassPolicy) {
        self.bypass = bypass;
    }

    /// Replaces the fault map (e.g. to evaluate several chips with one
    /// executor).
    pub fn set_fault_map(&mut self, fault_map: FaultMap) {
        self.fault_map = fault_map;
    }

    /// Computes `activations x weights` on the systolic array.
    ///
    /// `activations` has shape `[M, K]` (rows of spikes or activations) and
    /// `weights` has shape `[K, N]`. Weight element `(k, n)` resides in PE
    /// `(k mod rows, n mod cols)`; the partial sum of output `(m, n)` passes
    /// through that PE's accumulator, where its stuck-at faults are applied.
    ///
    /// # Errors
    ///
    /// Returns a tensor error for non-matrix inputs or mismatched inner
    /// dimensions.
    pub fn matmul(&self, activations: &Tensor, weights: &Tensor) -> Result<Tensor> {
        let (m, k) = matrix_dims(activations)?;
        let (k2, n) = matrix_dims(weights)?;
        if k != k2 {
            return Err(SystolicError::Tensor(TensorError::MatmulDimMismatch {
                left_cols: k,
                right_rows: k2,
            }));
        }
        let format = self.config.accumulator_format();
        let rows = self.config.rows();
        let cols = self.config.cols();

        // Precompute per-(k, n-fold) PE state: quantized weight, masks, skip flag.
        // The PE for (k, n) only depends on (k mod rows, n mod cols); weights
        // themselves depend on (k, n), so cache masks per (k, n mod cols).
        let fault_free = self.fault_map.is_empty();
        let a = activations.data();
        let w = weights.data();
        let mut out = vec![0.0f32; m * n];

        // Cache the fault masks for each (row, col-fold) of the grid to avoid
        // a BTreeMap lookup in the innermost loop.
        let mut mask_tile: Vec<Option<PeMasks>> = vec![None; rows * cols];
        if !fault_free {
            for r in 0..rows {
                for c in 0..cols {
                    mask_tile[r * cols + c] = self.fault_map.masks(PeCoord::new(r, c));
                }
            }
        }

        for i in 0..m {
            let a_row = &a[i * k..(i + 1) * k];
            for j in 0..n {
                let col_fold = j % cols;
                let mut acc = Fixed::zero(format);
                for (p, &a_ip) in a_row.iter().enumerate() {
                    let masks = if fault_free {
                        None
                    } else {
                        mask_tile[(p % rows) * cols + col_fold]
                    };
                    let skip = matches!(self.bypass, BypassPolicy::SkipFaulty) && masks.is_some();
                    if skip {
                        continue;
                    }
                    if a_ip != 0.0 {
                        let contribution = Fixed::from_f32(a_ip * w[p * n + j], format);
                        acc = acc.saturating_add(contribution);
                    }
                    if let Some(masks) = masks {
                        acc = masks.apply(acc);
                    }
                }
                out[i * n + j] = acc.to_f32();
            }
        }
        Ok(Tensor::from_vec(vec![m, n], out)?)
    }

    /// Reference clean product computed in floating point (no quantization,
    /// no faults) — used by tests and by callers that need the ideal output.
    ///
    /// # Errors
    ///
    /// Returns a tensor error for invalid matrix shapes.
    pub fn clean_matmul(&self, activations: &Tensor, weights: &Tensor) -> Result<Tensor> {
        Ok(falvolt_tensor::ops::matmul(activations, weights)?)
    }
}

fn matrix_dims(t: &Tensor) -> Result<(usize, usize)> {
    if t.ndim() != 2 {
        return Err(SystolicError::Tensor(TensorError::RankMismatch {
            expected: 2,
            actual: t.ndim(),
        }));
    }
    Ok((t.shape()[0], t.shape()[1]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Fault, StuckAt};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn config() -> SystolicConfig {
        SystolicConfig::new(4, 4).unwrap()
    }

    fn max_abs_diff(a: &Tensor, b: &Tensor) -> f32 {
        a.data()
            .iter()
            .zip(b.data())
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f32::max)
    }

    #[test]
    fn fault_free_array_matches_float_matmul_within_resolution() {
        let config = config();
        let executor = SystolicExecutor::new(config, FaultMap::new(config));
        let mut rng = StdRng::seed_from_u64(2);
        let a = falvolt_tensor::init::uniform(&[5, 7], 0.0, 1.0, &mut rng);
        let b = falvolt_tensor::init::uniform(&[7, 6], -0.5, 0.5, &mut rng);
        let faulty = executor.matmul(&a, &b).unwrap();
        let clean = executor.clean_matmul(&a, &b).unwrap();
        // Each of the 7 accumulation steps quantizes to 1/256 resolution.
        assert!(max_abs_diff(&faulty, &clean) < 7.0 / 256.0 + 1e-4);
    }

    #[test]
    fn binary_spike_inputs_are_exact_for_small_weights() {
        // With binary inputs and weights on the fixed-point lattice the
        // systolic result is exact.
        let config = config();
        let executor = SystolicExecutor::new(config, FaultMap::new(config));
        let a = Tensor::from_vec(vec![2, 4], vec![1.0, 0.0, 1.0, 1.0, 0.0, 1.0, 0.0, 1.0]).unwrap();
        let b = Tensor::from_fn(&[4, 3], |i| (i % 5) as f32 * 0.25);
        let faulty = executor.matmul(&a, &b).unwrap();
        let clean = executor.clean_matmul(&a, &b).unwrap();
        assert_eq!(faulty.data(), clean.data());
    }

    #[test]
    fn stuck_at_one_msb_corrupts_affected_columns_only() {
        let config = config();
        // Fault in PE (0, 1): affects output columns j with j % 4 == 1.
        let fault_map = FaultMap::from_faults(
            config,
            vec![Fault::new(PeCoord::new(0, 1), 15, StuckAt::One)],
        )
        .unwrap();
        let executor = SystolicExecutor::new(config, fault_map);
        let a = Tensor::ones(&[1, 4]);
        let b = Tensor::full(&[4, 4], 0.5);
        let out = executor.matmul(&a, &b).unwrap();
        let clean = executor.clean_matmul(&a, &b).unwrap();
        for j in 0..4 {
            let diff = (out.get(&[0, j]) - clean.get(&[0, j])).abs();
            if j == 1 {
                assert!(diff > 10.0, "column 1 must be corrupted, diff {diff}");
            } else {
                assert!(diff < 1e-3, "column {j} must be clean, diff {diff}");
            }
        }
    }

    #[test]
    fn stuck_at_zero_lsb_is_mild() {
        let config = config();
        let fault_map = FaultMap::from_faults(
            config,
            vec![Fault::new(PeCoord::new(0, 0), 0, StuckAt::Zero)],
        )
        .unwrap();
        let executor = SystolicExecutor::new(config, fault_map);
        let a = Tensor::ones(&[1, 4]);
        let b = Tensor::full(&[4, 4], 0.5);
        let out = executor.matmul(&a, &b).unwrap();
        let clean = executor.clean_matmul(&a, &b).unwrap();
        // LSB stuck-at-0 can change each pass by at most one resolution step.
        assert!(max_abs_diff(&out, &clean) <= 4.0 / 256.0 + 1e-6);
    }

    #[test]
    fn bypass_skips_faulty_contribution_instead_of_corrupting() {
        let config = config();
        let fault_map = FaultMap::from_faults(
            config,
            vec![Fault::new(PeCoord::new(2, 1), 15, StuckAt::One)],
        )
        .unwrap();
        let executor =
            SystolicExecutor::with_bypass(config, fault_map, BypassPolicy::SkipFaulty);
        let a = Tensor::ones(&[1, 4]);
        let b = Tensor::full(&[4, 4], 0.5);
        let out = executor.matmul(&a, &b).unwrap();
        // Column 1 loses the contribution of k = 2 (weight 0.5): 2.0 -> 1.5.
        assert!((out.get(&[0, 1]) - 1.5).abs() < 1e-3);
        // Other columns unaffected.
        assert!((out.get(&[0, 0]) - 2.0).abs() < 1e-3);
        assert!((out.get(&[0, 3]) - 2.0).abs() < 1e-3);
    }

    #[test]
    fn weight_folding_reuses_faulty_pe_across_tiles() {
        // K = 8 on a 4-row array: rows 0..4 and 4..8 share PEs. A fault in
        // PE (0, 0) must therefore corrupt contributions from k = 0 and k = 4.
        let config = config();
        let fault_map = FaultMap::from_faults(
            config,
            vec![Fault::new(PeCoord::new(0, 0), 15, StuckAt::One)],
        )
        .unwrap();
        let executor =
            SystolicExecutor::with_bypass(config, fault_map, BypassPolicy::SkipFaulty);
        let a = Tensor::ones(&[1, 8]);
        let b = Tensor::full(&[8, 4], 0.5);
        let out = executor.matmul(&a, &b).unwrap();
        // Column 0 loses k=0 and k=4 contributions: 4.0 - 1.0 = 3.0.
        assert!((out.get(&[0, 0]) - 3.0).abs() < 1e-3);
    }

    #[test]
    fn matmul_validates_shapes() {
        let config = config();
        let executor = SystolicExecutor::new(config, FaultMap::new(config));
        let a = Tensor::ones(&[2, 3]);
        let b = Tensor::ones(&[4, 2]);
        assert!(executor.matmul(&a, &b).is_err());
        let v = Tensor::ones(&[3]);
        assert!(executor.matmul(&v, &b).is_err());
    }

    #[test]
    fn set_fault_map_and_policy_take_effect() {
        let config = config();
        let mut executor = SystolicExecutor::new(config, FaultMap::new(config));
        let a = Tensor::ones(&[1, 4]);
        let b = Tensor::full(&[4, 4], 0.5);
        let clean = executor.matmul(&a, &b).unwrap();

        let fault_map = FaultMap::from_faults(
            config,
            vec![Fault::new(PeCoord::new(0, 0), 15, StuckAt::One)],
        )
        .unwrap();
        executor.set_fault_map(fault_map);
        let faulty = executor.matmul(&a, &b).unwrap();
        assert!(max_abs_diff(&clean, &faulty) > 1.0);

        executor.set_bypass_policy(BypassPolicy::SkipFaulty);
        assert_eq!(executor.bypass_policy(), BypassPolicy::SkipFaulty);
        let bypassed = executor.matmul(&a, &b).unwrap();
        assert!(max_abs_diff(&clean, &bypassed) <= 0.5 + 1e-3);
    }
}
