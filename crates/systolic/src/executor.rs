//! Faulty matrix-product executor.
//!
//! The SNN layers lower their linear algebra (convolutions via im2col, fully
//! connected layers directly) to matrix products `activations x weights`. The
//! executor replays those products through the systolic array: every partial
//! sum of an output element passes through the accumulator of the PE that
//! stores the corresponding weight, where the PE's stuck-at faults corrupt it.
//!
//! Execution is structured around a [`FoldPlan`]: all per-`(k, column-fold)`
//! fault state is resolved once per product, output columns whose PE column
//! is fault-free fold to the clean blocked kernel
//! ([`falvolt_tensor::kernels`]), and the remaining corruptible columns are
//! evaluated with the quantized accumulator chain, parallelised over output
//! rows (fault application is per-output-element, so rows are independent).
//!
//! Two scenario-throughput layers sit on top of the plan:
//!
//! * **Composed mask chains** — stuck-at masks compose associatively
//!   ([`PeMasks::then`]), so the run of masks between two nonzero activations
//!   collapses into a single (AND, OR) pair. Faulty columns walk only the
//!   nonzero activations and the (sparse, per-fold) masked positions instead
//!   of all `k` steps — bit-identical by construction, since the same adds
//!   and the same composed masks are applied in the same order.
//! * **Shared clean products** — with a [`crate::ProductCache`] installed,
//!   the maskless quantized chain of a product's fault-free columns is
//!   computed once per distinct activation matrix and shared across every
//!   fault scenario in a sweep (clean columns do not depend on the fault
//!   map). See the cache docs for the promote-on-second-request policy.

use crate::fault_map::PeMasks;
use crate::product_cache::{CacheDecision, ProductCache};
use crate::{FaultMap, Result, SystolicConfig, SystolicError, WeightMapping};
use falvolt_fixedpoint::{Fixed, QFormat};
use falvolt_tensor::simd::{self, Isa, SimdLevel, SimdOp};
use falvolt_tensor::{CancelToken, Fingerprint, MatmulHint, SpikeIndex, Tensor, TensorError};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Work threshold (in accumulation steps, `m * n * k`) below which the
/// faulty path stays serial — tiny per-layer products are issued constantly
/// during inference, often from already-parallel scenario workers.
const PARALLEL_ELEMENT_THRESHOLD: usize = 1 << 15;

/// How the executor treats faulty PEs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum BypassPolicy {
    /// Faulty PEs stay in the datapath and corrupt partial sums (the
    /// vulnerability-analysis setting).
    #[default]
    None,
    /// Faulty PEs are bypassed through the multiplexer of Figure 3b: their
    /// weight contribution is skipped and their faults never reach the
    /// partial sum (the fault-aware-pruning setting).
    SkipFaulty,
}

/// Executes matrix products on the (possibly faulty) systolic array.
///
/// # Example
///
/// ```
/// use falvolt_systolic::executor::BypassPolicy;
/// use falvolt_systolic::{FaultMap, SystolicConfig, SystolicExecutor};
/// use falvolt_tensor::Tensor;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let config = SystolicConfig::new(4, 4)?;
/// let executor = SystolicExecutor::new(config, FaultMap::new(config));
/// let a = Tensor::ones(&[2, 4]);
/// let b = Tensor::full(&[4, 3], 0.25);
/// let out = executor.matmul(&a, &b)?;
/// // With no faults the array reproduces the exact product (within
/// // fixed-point resolution).
/// assert!((out.get(&[0, 0]) - 1.0).abs() < 1e-2);
/// assert_eq!(executor.bypass_policy(), BypassPolicy::None);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SystolicExecutor {
    config: SystolicConfig,
    fault_map: FaultMap,
    mapping: WeightMapping,
    bypass: BypassPolicy,
    composed_chains: bool,
    cache: Option<Arc<ProductCache>>,
    cancel: Option<CancelToken>,
}

impl PartialEq for SystolicExecutor {
    fn eq(&self, other: &Self) -> bool {
        // The cache is a perf-sharing handle, not executor state: two
        // executors that compute identical products compare equal.
        self.config == other.config
            && self.fault_map == other.fault_map
            && self.mapping == other.mapping
            && self.bypass == other.bypass
            && self.composed_chains == other.composed_chains
    }
}

impl SystolicExecutor {
    /// Creates an executor for a configuration and fault map, with faults
    /// active in the datapath ([`BypassPolicy::None`]) and composed mask
    /// chains enabled.
    pub fn new(config: SystolicConfig, fault_map: FaultMap) -> Self {
        let mapping = WeightMapping::new(&config);
        Self {
            config,
            fault_map,
            mapping,
            bypass: BypassPolicy::None,
            composed_chains: true,
            cache: None,
            cancel: None,
        }
    }

    /// Creates an executor with an explicit bypass policy.
    pub fn with_bypass(config: SystolicConfig, fault_map: FaultMap, bypass: BypassPolicy) -> Self {
        let mut e = Self::new(config, fault_map);
        e.bypass = bypass;
        e
    }

    /// The systolic configuration.
    pub fn config(&self) -> &SystolicConfig {
        &self.config
    }

    /// The installed fault map.
    pub fn fault_map(&self) -> &FaultMap {
        &self.fault_map
    }

    /// The weight-stationary mapping used by this executor.
    pub fn mapping(&self) -> WeightMapping {
        self.mapping
    }

    /// The current bypass policy.
    pub fn bypass_policy(&self) -> BypassPolicy {
        self.bypass
    }

    /// Changes the bypass policy.
    pub fn set_bypass_policy(&mut self, bypass: BypassPolicy) {
        self.bypass = bypass;
    }

    /// Replaces the fault map (e.g. to evaluate several chips with one
    /// executor).
    pub fn set_fault_map(&mut self, fault_map: FaultMap) {
        self.fault_map = fault_map;
    }

    /// Enables or disables mask-chain composition on the faulty path.
    /// Disabled replays every one of the `k` accumulation steps per faulty
    /// column (the pre-composition engine) — kept as the baseline for
    /// benchmarks and bit-identity property tests.
    pub fn set_composed_mask_chains(&mut self, enabled: bool) {
        self.composed_chains = enabled;
    }

    /// `true` when the faulty path uses composed mask chains.
    pub fn composed_mask_chains(&self) -> bool {
        self.composed_chains
    }

    /// Installs (or removes) a sweep-shared clean-product cache.
    pub fn set_product_cache(&mut self, cache: Option<Arc<ProductCache>>) {
        self.cache = cache;
    }

    /// The installed product cache, if any.
    pub fn product_cache(&self) -> Option<&Arc<ProductCache>> {
        self.cache.as_ref()
    }

    /// Installs (or removes) a cooperative cancellation token. With one
    /// installed, every product checks it at entry and per output row of
    /// the fold chains and returns [`TensorError::Cancelled`] once tripped
    /// — no partial output is ever served.
    pub fn set_cancel_token(&mut self, token: Option<CancelToken>) {
        self.cancel = token;
    }

    /// The installed cancellation token, if any.
    pub fn cancel_token(&self) -> Option<&CancelToken> {
        self.cancel.as_ref()
    }

    /// Polls the installed cancellation token.
    fn check_cancelled(&self) -> Result<()> {
        if let Some(token) = &self.cancel {
            token.check()?;
        }
        Ok(())
    }

    /// Computes `activations x weights` on the systolic array with
    /// [`MatmulHint::Auto`]; see [`SystolicExecutor::matmul_hinted`].
    ///
    /// # Errors
    ///
    /// Returns a tensor error for non-matrix inputs or mismatched inner
    /// dimensions.
    pub fn matmul(&self, activations: &Tensor, weights: &Tensor) -> Result<Tensor> {
        self.matmul_hinted(activations, weights, MatmulHint::Auto)
    }

    /// Computes `activations x weights` on the systolic array.
    ///
    /// `activations` has shape `[M, K]` (rows of spikes or activations) and
    /// `weights` has shape `[K, N]`. Weight element `(k, n)` resides in PE
    /// `(k mod rows, n mod cols)`; the partial sum of output `(m, n)` passes
    /// through that PE's accumulator, where its stuck-at faults are applied.
    ///
    /// `hint` steers the fault-free fast path onto the event-driven sparse
    /// kernel for spike activations. The faulty path ignores it: fault
    /// corruption replays the exact quantized accumulator chain regardless,
    /// so fault-injection results are bit-identical whatever the hint — and
    /// bit-identical whether mask chains are composed or replayed, and
    /// whether clean columns come from the shared product cache or are
    /// recomputed.
    ///
    /// # Errors
    ///
    /// Returns a tensor error for non-matrix inputs or mismatched inner
    /// dimensions.
    pub fn matmul_hinted(
        &self,
        activations: &Tensor,
        weights: &Tensor,
        hint: MatmulHint,
    ) -> Result<Tensor> {
        self.check_cancelled()?;
        let (m, k) = matrix_dims(activations)?;
        let (k2, n) = matrix_dims(weights)?;
        if k != k2 {
            return Err(SystolicError::Tensor(TensorError::MatmulDimMismatch {
                left_cols: k,
                right_rows: k2,
            }));
        }
        let a = activations.data();
        let w = weights.data();

        // Cache keys are O(1) content-id fingerprints (no operand hashing),
        // so every product — including the deep fully connected ones whose
        // operands previously cost more to hash than to multiply — consults
        // the sweep-shared store when one is installed.
        let cache = self.cache.as_ref();

        // Hoist all per-(k, col-fold) fault state out of the element loops;
        // the dense replay chains are only materialised when the replay
        // engine will actually walk them.
        let plan = if self.composed_chains {
            FoldPlan::without_replay_chains(&self.config, &self.fault_map, k)
        } else {
            FoldPlan::new(&self.config, &self.fault_map, k)
        };

        // Fast path: with no fault anywhere in the array the datapath cannot
        // corrupt anything, so the product folds to the kernel layer's
        // structure-aware dispatch (blocked dense, or gather-accumulate for
        // sparse spike activations). (This also drops the hardware's
        // fixed-point quantization — an ideal-hardware idealisation bounded
        // by k * resolution; only faulty maps replay the quantized datapath
        // below.)
        if !plan.any_fault() {
            let out = fault_free_product(activations, weights, m, k, n, hint, cache);
            return Ok(Tensor::from_vec(vec![m, n], out)?);
        }
        if m == 0 || n == 0 {
            return Ok(Tensor::from_vec(vec![m, n], Vec::new())?);
        }

        // Faulty path. Every column replays the hardware's quantized
        // accumulator chain (so the executor agrees with the structural
        // array simulation). Columns whose PE column is fault-free take a
        // maskless fast loop — served from the sweep-shared clean product
        // when available (fault-free columns cannot depend on the fault
        // map). Corruptible columns walk the merged event stream of nonzero
        // activations and masked positions, composing mask runs.
        let format = self.config.accumulator_format();
        let bypass = matches!(self.bypass, BypassPolicy::SkipFaulty);

        let clean_shared: Option<Arc<Vec<f32>>> = match cache {
            Some(cache) => {
                let key = product_key(
                    "quantized-clean",
                    activations,
                    weights,
                    m,
                    k,
                    n,
                    u64::from(format.total_bits()) << 8 | u64::from(format.frac_bits()),
                );
                match cache.lookup(key) {
                    CacheDecision::Hit(shared) => Some(shared),
                    CacheDecision::Compute => {
                        let full = Arc::new(quantized_clean_product(a, w, m, k, n, format));
                        cache.fulfill(key, Arc::clone(&full));
                        Some(full)
                    }
                    CacheDecision::Skip => None,
                }
            }
            None => None,
        };

        // A CSR spike index on the activations makes the per-row event list
        // a free view: the executor walks the index instead of re-scanning
        // (and re-allocating) the nonzero scratch per product.
        let spike_index = spike_index_for(activations, m, k);
        // Binary activations contribute `quantize(1.0 * w) == quantize(w)`
        // per event — a pure function of the weights and the format, shared
        // across every scenario, time step and batch through the cache. A
        // table read replaces the multiply+round+clamp per accumulation.
        let qweights = quantized_weight_table(
            spike_index.is_some().then_some(weights),
            w,
            k,
            n,
            format,
            cache,
        );
        let (min_raw, max_raw) = (i64::from(format.min_raw()), i64::from(format.max_raw()));
        let cols = self.config.cols();
        let qw_slice: Option<&[i32]> = qweights.as_deref().map(Vec::as_slice);
        // Lane engine: only the composed walk vectorises — the replay engine
        // stays scalar as the bit-identity reference — and `Isa::Scalar`
        // keeps the legacy per-column loop exactly.
        let use_lanes = self.composed_chains && !matches!(simd::active(), Isa::Scalar);
        let cancel = self.cancel.as_ref();
        let compute_row =
            |i: usize, a_row: &[f32], out_row: &mut [f32], nz: &mut Vec<(usize, f32)>| {
                // Fold-chain granularity cancellation: a tripped token stops
                // the remaining rows cheaply; the post-loop check below turns
                // the partial buffer into `Cancelled` before it can be served.
                if cancel.is_some_and(CancelToken::is_cancelled) {
                    return;
                }
                let clean_row = clean_shared.as_ref().map(|v| &v[i * n..(i + 1) * n]);
                // Event skip-list: the nonzero activations of this row, resolved
                // once and reused by every output column (the seed re-scanned
                // all k activations for each of the n columns). The buffer is
                // caller-owned scratch, reused across the rows of a panel —
                // served from the CSR index when the activations carry one.
                fill_nonzeros(nz, spike_index, i, a_row);
                if use_lanes {
                    // Fill the whole row with the maskless chain (a copy when
                    // the sweep cache shares one), then overwrite the columns
                    // of corruptible folds with the composed lane walk.
                    match clean_row {
                        Some(clean) => out_row.copy_from_slice(clean),
                        None => simd::dispatch(CleanRowOp {
                            nz,
                            w,
                            qw: qw_slice,
                            out_row: &mut *out_row,
                            n,
                            format,
                            min_raw,
                            max_raw,
                        }),
                    }
                    simd::dispatch(FaultyFoldsOp {
                        plan: &plan,
                        nz,
                        w,
                        qw: qw_slice,
                        out_row,
                        n,
                        cols,
                        format,
                        min_raw,
                        max_raw,
                        bypass,
                    });
                    return;
                }
                for (j, out_elem) in out_row.iter_mut().enumerate() {
                    if plan.column_is_clean(j) {
                        if let Some(clean) = clean_row {
                            // Sweep-shared value of the identical maskless chain.
                            *out_elem = clean[j];
                            continue;
                        }
                        *out_elem = match &qweights {
                            Some(qw) => {
                                quantized_clean_element_tab(nz, qw, n, j, format, min_raw, max_raw)
                            }
                            None => quantized_clean_element(nz, w, n, j, format, min_raw, max_raw),
                        };
                        continue;
                    }
                    *out_elem = if !self.composed_chains {
                        faulty_column_replay(&plan, j, a_row, w, n, format, bypass)
                    } else if let Some(qw) = &qweights {
                        faulty_column_composed_tab(
                            plan.fold_masked(j),
                            nz,
                            qw,
                            n,
                            j,
                            format,
                            min_raw,
                            max_raw,
                            bypass,
                        )
                    } else {
                        faulty_column_composed(
                            plan.fold_masked(j),
                            nz,
                            w,
                            n,
                            j,
                            format,
                            min_raw,
                            max_raw,
                            bypass,
                        )
                    };
                }
            };

        let mut out = vec![0.0f32; m * n];
        for_each_row_panel(a, &mut out, m, k, n, compute_row);
        self.check_cancelled()?;
        Ok(Tensor::from_vec(vec![m, n], out)?)
    }

    /// Multi-map batched product with [`MatmulHint::Auto`]; see
    /// [`SystolicExecutor::matmul_scenarios_hinted`].
    ///
    /// # Errors
    ///
    /// Returns a tensor error for non-matrix inputs or mismatched inner
    /// dimensions.
    pub fn matmul_scenarios(
        &self,
        activations: &Tensor,
        weights: &Tensor,
        maps: &[FaultMap],
    ) -> Result<Vec<Tensor>> {
        self.matmul_scenarios_hinted(activations, weights, maps, MatmulHint::Auto)
    }

    /// Computes `activations x weights` under every fault map of a scenario
    /// set in **one pass over the event stream**, returning one output per
    /// map (in input order) — each bit-identical to
    /// [`SystolicExecutor::matmul_hinted`] with that map installed.
    ///
    /// A figure sweep replays the *same* activations against dozens of fault
    /// maps; evaluating them per map repeats all the map-independent work.
    /// The batched walk amortises it:
    ///
    /// * each row's nonzero event list is resolved **once** for all maps
    ///   (free when the activations carry a CSR spike index),
    /// * each corruptible column's quantized contribution sequence
    ///   (`quantize(a_ip * w[p, j])`, map-independent) is computed **once**
    ///   and replayed per map with that map's composed mask events,
    /// * the maskless quantized clean product is computed **once** in-call
    ///   (and shared across calls through the [`ProductCache`] when
    ///   installed), serving every map's fault-free columns,
    /// * fault-free maps share one structure-aware fast-path product.
    ///
    /// The executor's own fault map is ignored; its grid, accumulator format
    /// and bypass policy apply to every scenario. All maps must target this
    /// executor's grid.
    ///
    /// # Errors
    ///
    /// Returns a tensor error for non-matrix inputs or mismatched inner
    /// dimensions.
    pub fn matmul_scenarios_hinted(
        &self,
        activations: &Tensor,
        weights: &Tensor,
        maps: &[FaultMap],
        hint: MatmulHint,
    ) -> Result<Vec<Tensor>> {
        self.matmul_scenarios_view(activations, weights, maps, hint)?
            .into_tensors()
    }

    /// [`SystolicExecutor::matmul_scenarios_hinted`] without the per-map
    /// materialisation: the batched walk's interleaved buffer is returned as
    /// a [`ScenarioMatrices`] view. Callers that consume rows (or a subset
    /// of scenarios) skip the O(maps · m · n) de-interleave copy entirely;
    /// [`ScenarioMatrices::tensor`] materialises any single scenario on
    /// demand, bit-identical to the eager API.
    ///
    /// # Errors
    ///
    /// Returns a tensor error for non-matrix inputs or mismatched inner
    /// dimensions.
    pub fn matmul_scenarios_view(
        &self,
        activations: &Tensor,
        weights: &Tensor,
        maps: &[FaultMap],
        hint: MatmulHint,
    ) -> Result<ScenarioMatrices> {
        self.check_cancelled()?;
        let (m, k) = matrix_dims(activations)?;
        let (k2, n) = matrix_dims(weights)?;
        if k != k2 {
            return Err(SystolicError::Tensor(TensorError::MatmulDimMismatch {
                left_cols: k,
                right_rows: k2,
            }));
        }
        if maps.is_empty() {
            return Ok(ScenarioMatrices {
                m,
                n,
                lanes: 0,
                inter: Vec::new(),
                lane_of: Vec::new(),
            });
        }
        let a = activations.data();
        let w = weights.data();
        let cache = self.cache.as_ref();
        let plans: Vec<FoldPlan> = maps
            .iter()
            .map(|map| FoldPlan::without_replay_chains(&self.config, map, k))
            .collect();
        let mut lane_of: Vec<Option<ScenarioLane>> = vec![None; maps.len()];

        // Fault-free maps cannot corrupt anything: they share one fast-path
        // product (identical to the single-map fast path, cache included) —
        // one tensor, shared by reference across every fault-free scenario.
        let mut fast: Option<Arc<Tensor>> = None;
        for (s, plan) in plans.iter().enumerate() {
            if plan.any_fault() {
                continue;
            }
            let shared = match &fast {
                Some(t) => Arc::clone(t),
                None => {
                    let value = fault_free_product(activations, weights, m, k, n, hint, cache);
                    let t = Arc::new(Tensor::from_vec(vec![m, n], value)?);
                    fast = Some(Arc::clone(&t));
                    t
                }
            };
            lane_of[s] = Some(ScenarioLane::Shared(shared));
        }

        let faulty: Vec<usize> = plans
            .iter()
            .enumerate()
            .filter(|(_, plan)| plan.any_fault())
            .map(|(s, _)| s)
            .collect();
        if faulty.is_empty() || m == 0 || n == 0 {
            for (fi, &s) in faulty.iter().enumerate() {
                lane_of[s] = Some(ScenarioLane::Lane(fi));
            }
            return Ok(ScenarioMatrices {
                m,
                n,
                lanes: faulty.len(),
                inter: Vec::new(),
                lane_of: lane_table(lane_of)?,
            });
        }

        let format = self.config.accumulator_format();
        let bypass = matches!(self.bypass, BypassPolicy::SkipFaulty);
        let (min_raw, max_raw) = (i64::from(format.min_raw()), i64::from(format.max_raw()));

        // Every map's fault-free columns read the maskless quantized value.
        // It is the corrupted chain *without* the mask events — the same
        // per-column q sequence folded without masks — so the batched walk
        // derives it from the q scratch it builds anyway instead of running
        // a separate clean product (an extra quantize pass over the whole
        // matrix). A sweep-shared clean product is still consumed when the
        // cache holds one, and fulfilled when the cache promotes this key.
        let (shared_clean, fulfil_clean): (Option<Arc<Vec<f32>>>, Option<u128>) = match cache {
            Some(cache) => {
                let key = product_key(
                    "quantized-clean",
                    activations,
                    weights,
                    m,
                    k,
                    n,
                    u64::from(format.total_bits()) << 8 | u64::from(format.frac_bits()),
                );
                match cache.lookup(key) {
                    CacheDecision::Hit(shared) => (Some(shared), None),
                    CacheDecision::Compute => (None, Some(key)),
                    CacheDecision::Skip => (None, None),
                }
            }
            None => (None, None),
        };

        // Which faulty scenarios actually walk each column fold; the rest of
        // the maps copy the shared clean value.
        let cols = self.config.cols();
        let mut fold_users: Vec<Vec<usize>> = vec![Vec::new(); cols];
        for (fi, &s) in faulty.iter().enumerate() {
            for (fold, users) in fold_users.iter_mut().enumerate() {
                if !plans[s].column_is_clean(fold) {
                    users.push(fi);
                }
            }
        }

        let spike_index = spike_index_for(activations, m, k);
        let qweights = quantized_weight_table(
            spike_index.is_some().then_some(weights),
            w,
            k,
            n,
            format,
            cache,
        );
        let fcount = faulty.len();
        // One extra lane holds the derived clean values when no shared clean
        // product is available (lane `fcount`, later fulfilled to the cache
        // if this call was promoted).
        let lanes = fcount + usize::from(shared_clean.is_none());
        let row_stride = lanes * n;
        // Interleaved output: row-major, all scenarios of one row contiguous,
        // so the row walk stays embarrassingly parallel across threads.
        let mut inter = vec![0.0f32; m * row_stride];
        let qw_slice: Option<&[i32]> = qweights.as_deref().map(Vec::as_slice);
        // Per-fold `(scenario lane, masked list)` pairs, resolved once for
        // the lane engine (the scenario plans are always composed).
        let fold_user_masked: Vec<FoldLaneMasks<'_>> = fold_users
            .iter()
            .enumerate()
            .map(|(fold, users)| {
                users
                    .iter()
                    .map(|&fi| (fi, plans[faulty[fi]].fold_masked(fold)))
                    .collect()
            })
            .collect();
        let use_lanes = !matches!(simd::active(), Isa::Scalar);
        let cancel = self.cancel.as_ref();
        let compute_row =
            |i: usize, row_chunk: &mut [f32], nz: &mut Vec<(usize, f32)>, q: &mut Vec<i64>| {
                if cancel.is_some_and(CancelToken::is_cancelled) {
                    return;
                }
                fill_nonzeros(nz, spike_index, i, &a[i * k..(i + 1) * k]);
                let shared_row = shared_clean.as_ref().map(|v| &v[i * n..(i + 1) * n]);
                if use_lanes {
                    // Seed every scenario lane with the maskless chain (and
                    // derive it into the clean lane when the sweep cache does
                    // not share one), then overwrite the columns of each
                    // corruptible fold with the shared-q lane walk.
                    match shared_row {
                        Some(row) => {
                            for fi in 0..fcount {
                                row_chunk[fi * n..(fi + 1) * n].copy_from_slice(row);
                            }
                        }
                        None => {
                            simd::dispatch(CleanRowOp {
                                nz,
                                w,
                                qw: qw_slice,
                                out_row: &mut row_chunk[fcount * n..(fcount + 1) * n],
                                n,
                                format,
                                min_raw,
                                max_raw,
                            });
                            let (user_lanes, clean_lane) = row_chunk.split_at_mut(fcount * n);
                            for fi in 0..fcount {
                                user_lanes[fi * n..(fi + 1) * n].copy_from_slice(&clean_lane[..n]);
                            }
                        }
                    }
                    simd::dispatch(ScenarioFoldsOp {
                        folds: &fold_user_masked,
                        nz,
                        w,
                        qw: qw_slice,
                        row_chunk,
                        q,
                        n,
                        cols,
                        format,
                        min_raw,
                        max_raw,
                        bypass,
                    });
                    return;
                }
                for j in 0..n {
                    let users = &fold_users[j % cols];
                    // The quantized contribution sequence of this (row, column)
                    // is map-independent: compute it once and replay it under
                    // every map that can corrupt this fold (read straight from
                    // the weight table when binary activations allow one). With
                    // no shared clean product it is needed for every column —
                    // the clean value is the same chain folded without masks.
                    let need_q = !users.is_empty() || shared_row.is_none();
                    if need_q {
                        q.clear();
                        match &qweights {
                            Some(qw) => q.extend(nz.iter().map(|&(p, _)| i64::from(qw[p * n + j]))),
                            None => q.extend(
                                nz.iter()
                                    .map(|&(p, v)| i64::from(format.quantize(v * w[p * n + j]))),
                            ),
                        }
                    }
                    let clean_v = match shared_row {
                        Some(row) => row[j],
                        None => {
                            let mut acc = 0i64;
                            for &qv in q.iter() {
                                acc = (acc + qv).clamp(min_raw, max_raw);
                            }
                            let v = format.dequantize(acc as i32);
                            row_chunk[fcount * n + j] = v;
                            v
                        }
                    };
                    for fi in 0..fcount {
                        row_chunk[fi * n + j] = clean_v;
                    }
                    for &fi in users {
                        row_chunk[fi * n + j] = faulty_column_from_q(
                            plans[faulty[fi]].fold_masked(j),
                            nz,
                            q,
                            format,
                            min_raw,
                            max_raw,
                            bypass,
                        );
                    }
                }
            };
        let threads = rayon::current_num_threads();
        if threads <= 1 || m * n * k * fcount < PARALLEL_ELEMENT_THRESHOLD {
            let (mut nz, mut q) = (Vec::new(), Vec::new());
            for (i, row_chunk) in inter.chunks_mut(row_stride).enumerate() {
                compute_row(i, row_chunk, &mut nz, &mut q);
            }
        } else {
            let rows_per_panel = m.div_ceil(threads * 2).max(1);
            inter
                .par_chunks_mut(rows_per_panel * row_stride)
                .enumerate()
                .for_each(|(panel, out_panel)| {
                    let row0 = panel * rows_per_panel;
                    let (mut nz, mut q) = (Vec::new(), Vec::new());
                    for (r, row_chunk) in out_panel.chunks_mut(row_stride).enumerate() {
                        compute_row(row0 + r, row_chunk, &mut nz, &mut q);
                    }
                });
        }

        // No de-interleave: faulty scenarios keep their lane in the
        // interleaved buffer and materialise on demand through the view.
        for (fi, &s) in faulty.iter().enumerate() {
            lane_of[s] = Some(ScenarioLane::Lane(fi));
        }
        if let Err(cancelled) = self.check_cancelled() {
            // The interleaved buffer is partial: release the clean-product
            // promotion (if this call held one) instead of fulfilling it.
            if let (Some(key), Some(cache)) = (fulfil_clean, cache) {
                cache.abandon(key);
            }
            return Err(cancelled);
        }
        if let (Some(key), Some(cache)) = (fulfil_clean, cache) {
            let mut data = vec![0.0f32; m * n];
            for i in 0..m {
                let src = &inter[i * row_stride + fcount * n..i * row_stride + (fcount + 1) * n];
                data[i * n..(i + 1) * n].copy_from_slice(src);
            }
            cache.fulfill(key, Arc::new(data));
        }
        Ok(ScenarioMatrices {
            m,
            n,
            lanes,
            inter,
            lane_of: lane_table(lane_of)?,
        })
    }

    /// Reference clean product computed in floating point (no quantization,
    /// no faults) — used by tests and by callers that need the ideal output.
    ///
    /// # Errors
    ///
    /// Returns a tensor error for invalid matrix shapes.
    pub fn clean_matmul(&self, activations: &Tensor, weights: &Tensor) -> Result<Tensor> {
        Ok(falvolt_tensor::ops::matmul(activations, weights)?)
    }
}

/// Runs `row_fn` over every output row of an `m x n` product — serially
/// below the parallel work threshold (tiny per-layer products, and
/// nested-parallel scenario workers, skip the fan-out machinery), otherwise
/// in row panels across threads (rows are embarrassingly parallel: fault
/// application is per-output-element). Each call receives the row index, the
/// row's activation slice and a per-panel scratch buffer for nonzero lists.
fn for_each_row_panel<F>(a: &[f32], out: &mut [f32], m: usize, k: usize, n: usize, row_fn: F)
where
    F: Fn(usize, &[f32], &mut [f32], &mut Vec<(usize, f32)>) + Sync,
{
    let threads = rayon::current_num_threads();
    if threads <= 1 || m * n * k < PARALLEL_ELEMENT_THRESHOLD {
        let mut scratch = Vec::new();
        for (i, out_row) in out.chunks_mut(n).enumerate() {
            row_fn(i, &a[i * k..(i + 1) * k], out_row, &mut scratch);
        }
        return;
    }
    let rows_per_panel = m.div_ceil(threads * 2).max(1);
    out.par_chunks_mut(rows_per_panel * n)
        .enumerate()
        .for_each(|(panel, out_panel)| {
            let row0 = panel * rows_per_panel;
            let mut scratch = Vec::new();
            for (r, out_row) in out_panel.chunks_mut(n).enumerate() {
                row_fn(
                    row0 + r,
                    &a[(row0 + r) * k..(row0 + r + 1) * k],
                    out_row,
                    &mut scratch,
                );
            }
        });
}

/// Stable tag of a hint for cache keying (the dispatch decision is a pure
/// function of the operand and the hint, so the hint is part of the key).
fn hint_tag(hint: MatmulHint) -> u64 {
    match hint {
        MatmulHint::Auto => 0,
        MatmulHint::Dense => 1,
        MatmulHint::Spikes => 2,
    }
}

/// Key of one product under one execution regime (`tag`). Operands are
/// identified by their generation-tagged content ids — O(1) per consult, and
/// an id equal to a cached one guarantees byte-equal content (ids are never
/// reused and every mutation re-mints them), so id-keyed hits are as
/// bit-safe as the content hashes they replaced.
fn product_key(
    tag: &str,
    a: &Tensor,
    w: &Tensor,
    m: usize,
    k: usize,
    n: usize,
    extra: u64,
) -> u128 {
    let mut fp = Fingerprint::new();
    fp.write_str(tag);
    fp.write_dims(&[m, k, n]);
    fp.write_u64(extra);
    fp.write_u64(a.content_id());
    fp.write_u64(w.content_id());
    fp.finish()
}

/// The activations' CSR spike index, when it matches the `m x k` matrix
/// view. The index was validated against the data when it was attached (and
/// any mutable access drops it), so only the geometry is checked here.
fn spike_index_for(activations: &Tensor, m: usize, k: usize) -> Option<&SpikeIndex> {
    activations
        .spike_index()
        .filter(|ix| ix.rows() == m && ix.cols() == k)
        .map(|ix| ix.as_ref())
}

/// Resolves one row's nonzero event list into caller-owned scratch: a free
/// view of the CSR index when one is attached (spikes are binary, so the
/// value is `1.0`), otherwise one scan of the dense row.
fn fill_nonzeros(nz: &mut Vec<(usize, f32)>, index: Option<&SpikeIndex>, i: usize, a_row: &[f32]) {
    nz.clear();
    match index {
        Some(ix) => nz.extend(ix.row(i).iter().map(|&p| (p as usize, 1.0f32))),
        None => nz.extend(a_row.iter().copied().enumerate().filter(|&(_, v)| v != 0.0)),
    }
}

/// The fault-free product of the executor's fast path: the kernel layer's
/// structure-aware dispatch, shared through the product cache when one is
/// installed. Bit-identical whether the value is computed, fulfilled or hit
/// (cached values are pure functions of the key).
fn fault_free_product(
    activations: &Tensor,
    weights: &Tensor,
    m: usize,
    k: usize,
    n: usize,
    hint: MatmulHint,
    cache: Option<&Arc<ProductCache>>,
) -> Vec<f32> {
    let dispatch = || {
        falvolt_tensor::kernels::matmul_dispatch_indexed(
            activations.data(),
            spike_index_for(activations, m, k),
            weights.data(),
            m,
            k,
            n,
            hint,
        )
    };
    if let Some(cache) = cache {
        let key = product_key("float", activations, weights, m, k, n, hint_tag(hint));
        match cache.lookup(key) {
            CacheDecision::Hit(shared) => return shared.as_ref().clone(),
            CacheDecision::Compute => {
                let out = Arc::new(dispatch());
                cache.fulfill(key, Arc::clone(&out));
                return out.as_ref().clone();
            }
            CacheDecision::Skip => {}
        }
    }
    dispatch()
}

/// Resolves the sweep-shared quantized-weight table for a product with
/// **binary** activations (`binary_weights` is `Some` only when a CSR spike
/// index certifies every nonzero is `1.0`, so `quantize(a_ip * w) ==
/// quantize(w)` exactly). Promote-on-second-request through the product
/// cache: without a cache (or before promotion) the caller quantizes inline
/// — building a `k x n` table for a single product would cost more than it
/// saves.
fn quantized_weight_table(
    binary_weights: Option<&Tensor>,
    w: &[f32],
    k: usize,
    n: usize,
    format: QFormat,
    cache: Option<&Arc<ProductCache>>,
) -> Option<Arc<Vec<i32>>> {
    let weights = binary_weights?;
    let cache = cache?;
    let mut fp = Fingerprint::new();
    fp.write_str("qweights");
    fp.write_dims(&[k, n]);
    fp.write_u64(u64::from(format.total_bits()) << 8 | u64::from(format.frac_bits()));
    fp.write_u64(weights.content_id());
    let key = fp.finish();
    match cache.lookup_qweights(key) {
        CacheDecision::Hit(table) => Some(table),
        CacheDecision::Compute => {
            let table: Arc<Vec<i32>> = Arc::new(w.iter().map(|&x| format.quantize(x)).collect());
            cache.fulfill_qweights(key, Arc::clone(&table));
            Some(table)
        }
        CacheDecision::Skip => None,
    }
}

/// [`quantized_clean_element`] with the contribution read from a
/// quantized-weight table (binary activations only): same chain, same bits.
fn quantized_clean_element_tab(
    nonzero: &[(usize, f32)],
    qw: &[i32],
    n: usize,
    j: usize,
    format: QFormat,
    min_raw: i64,
    max_raw: i64,
) -> f32 {
    let mut acc = 0i64;
    for &(p, _) in nonzero {
        acc = (acc + i64::from(qw[p * n + j])).clamp(min_raw, max_raw);
    }
    format.dequantize(acc as i32)
}

/// [`faulty_column_composed`] with the contributions read from a
/// quantized-weight table (binary activations only): same adds, same
/// composed masks, same order — bit-identical.
#[allow(clippy::too_many_arguments)]
fn faulty_column_composed_tab(
    masked: &[(u32, PeMasks)],
    nonzero: &[(usize, f32)],
    qw: &[i32],
    n: usize,
    j: usize,
    format: QFormat,
    min_raw: i64,
    max_raw: i64,
    bypass: bool,
) -> f32 {
    let mut acc = 0i64;
    let mut mi = 0usize;
    if bypass {
        for &(p, _) in nonzero {
            while mi < masked.len() && (masked[mi].0 as usize) < p {
                mi += 1;
            }
            if mi < masked.len() && masked[mi].0 as usize == p {
                continue;
            }
            acc = (acc + i64::from(qw[p * n + j])).clamp(min_raw, max_raw);
        }
        return format.dequantize(acc as i32);
    }
    for &(p, _) in nonzero {
        if mi < masked.len() && (masked[mi].0 as usize) < p {
            let mut composed = masked[mi].1;
            mi += 1;
            while mi < masked.len() && (masked[mi].0 as usize) < p {
                composed = composed.then(masked[mi].1);
                mi += 1;
            }
            acc = apply_masks_raw(acc, composed, format);
        }
        acc = (acc + i64::from(qw[p * n + j])).clamp(min_raw, max_raw);
    }
    if mi < masked.len() {
        let mut composed = masked[mi].1;
        mi += 1;
        while mi < masked.len() {
            composed = composed.then(masked[mi].1);
            mi += 1;
        }
        acc = apply_masks_raw(acc, composed, format);
    }
    format.dequantize(acc as i32)
}

/// One element of the maskless quantized accumulator chain: identical to the
/// fault-free fold of the faulty path (quantize-and-saturate on raw words,
/// zero contributions skipped — a zero leaves the clamped accumulator
/// unchanged).
#[allow(clippy::too_many_arguments)]
fn quantized_clean_element(
    nonzero: &[(usize, f32)],
    w: &[f32],
    n: usize,
    j: usize,
    format: QFormat,
    min_raw: i64,
    max_raw: i64,
) -> f32 {
    let mut acc = 0i64;
    for &(p, a_ip) in nonzero {
        let q = i64::from(format.quantize(a_ip * w[p * n + j]));
        acc = (acc + q).clamp(min_raw, max_raw);
    }
    format.dequantize(acc as i32)
}

/// The full maskless quantized product (every column treated as clean) — the
/// sweep-shared value that any scenario's fault-free columns can be copied
/// from. Row-parallel like the faulty path.
fn quantized_clean_product(
    a: &[f32],
    w: &[f32],
    m: usize,
    k: usize,
    n: usize,
    format: QFormat,
) -> Vec<f32> {
    let (min_raw, max_raw) = (i64::from(format.min_raw()), i64::from(format.max_raw()));
    let mut out = vec![0.0f32; m * n];
    for_each_row_panel(a, &mut out, m, k, n, |_, a_row, out_row, nz| {
        nz.clear();
        nz.extend(a_row.iter().copied().enumerate().filter(|&(_, v)| v != 0.0));
        for (j, out_elem) in out_row.iter_mut().enumerate() {
            *out_elem = quantized_clean_element(nz, w, n, j, format, min_raw, max_raw);
        }
    });
    out
}

/// Applies a composed mask pair to a raw accumulator word — exactly
/// [`PeMasks::apply`] on a [`Fixed`] carrying that raw (the accumulator is
/// kept clamped into the format's range, so `from_raw`'s clamp is a no-op).
fn apply_masks_raw(acc: i64, masks: PeMasks, format: QFormat) -> i64 {
    i64::from(masks.apply(Fixed::from_raw(acc as i32, format)).raw())
}

/// Faulty column via the composed event walk: merge the row's nonzero
/// activations with the fold's masked positions in `p` order (add before
/// mask at equal positions, exactly the original loop's order) and collapse
/// every run of masks between two adds into one composed pair. The
/// accumulator lives as a raw word with the same quantize-and-saturate chain
/// the [`Fixed`] arithmetic performs (format bounds hoisted by the caller).
#[allow(clippy::too_many_arguments)]
fn faulty_column_composed(
    masked: &[(u32, PeMasks)],
    nonzero: &[(usize, f32)],
    w: &[f32],
    n: usize,
    j: usize,
    format: QFormat,
    min_raw: i64,
    max_raw: i64,
    bypass: bool,
) -> f32 {
    let mut acc = 0i64;
    let mut mi = 0usize;
    if bypass {
        // Bypassed PEs contribute nothing and corrupt nothing: the product
        // reduces to the nonzero activations whose position is unmasked.
        for &(p, a_ip) in nonzero {
            while mi < masked.len() && (masked[mi].0 as usize) < p {
                mi += 1;
            }
            if mi < masked.len() && masked[mi].0 as usize == p {
                continue;
            }
            let q = i64::from(format.quantize(a_ip * w[p * n + j]));
            acc = (acc + q).clamp(min_raw, max_raw);
        }
        return format.dequantize(acc as i32);
    }
    for &(p, a_ip) in nonzero {
        // Compose and apply every mask strictly before this add. Masks ahead
        // of the first nonzero act on the zero accumulator, exactly as the
        // replayed chain does.
        if mi < masked.len() && (masked[mi].0 as usize) < p {
            let mut composed = masked[mi].1;
            mi += 1;
            while mi < masked.len() && (masked[mi].0 as usize) < p {
                composed = composed.then(masked[mi].1);
                mi += 1;
            }
            acc = apply_masks_raw(acc, composed, format);
        }
        let q = i64::from(format.quantize(a_ip * w[p * n + j]));
        acc = (acc + q).clamp(min_raw, max_raw);
    }
    // Tail: masks at and after the last add (an add at position p is masked
    // by position p's own PE after the accumulation step).
    if mi < masked.len() {
        let mut composed = masked[mi].1;
        mi += 1;
        while mi < masked.len() {
            composed = composed.then(masked[mi].1);
            mi += 1;
        }
        acc = apply_masks_raw(acc, composed, format);
    }
    format.dequantize(acc as i32)
}

/// Faulty column via the composed event walk with a **precomputed quantized
/// contribution sequence**: `q[idx]` is `quantize(a_ip * w[p, j])` for the
/// `idx`-th nonzero — exactly what [`faulty_column_composed`] computes
/// inline, so the chain (same adds, same composed masks, same order) is
/// bit-identical. The batched scenario walk shares one `q` across every
/// fault map that corrupts the column, amortising the multiply+quantize.
#[allow(clippy::too_many_arguments)]
fn faulty_column_from_q(
    masked: &[(u32, PeMasks)],
    nonzero: &[(usize, f32)],
    q: &[i64],
    format: QFormat,
    min_raw: i64,
    max_raw: i64,
    bypass: bool,
) -> f32 {
    let mut acc = 0i64;
    let mut mi = 0usize;
    if bypass {
        for (&(p, _), &qv) in nonzero.iter().zip(q) {
            while mi < masked.len() && (masked[mi].0 as usize) < p {
                mi += 1;
            }
            if mi < masked.len() && masked[mi].0 as usize == p {
                continue;
            }
            acc = (acc + qv).clamp(min_raw, max_raw);
        }
        return format.dequantize(acc as i32);
    }
    for (&(p, _), &qv) in nonzero.iter().zip(q) {
        if mi < masked.len() && (masked[mi].0 as usize) < p {
            let mut composed = masked[mi].1;
            mi += 1;
            while mi < masked.len() && (masked[mi].0 as usize) < p {
                composed = composed.then(masked[mi].1);
                mi += 1;
            }
            acc = apply_masks_raw(acc, composed, format);
        }
        acc = (acc + qv).clamp(min_raw, max_raw);
    }
    if mi < masked.len() {
        let mut composed = masked[mi].1;
        mi += 1;
        while mi < masked.len() {
            composed = composed.then(masked[mi].1);
            mi += 1;
        }
        acc = apply_masks_raw(acc, composed, format);
    }
    format.dequantize(acc as i32)
}

// ---------------------------------------------------------------------------
// Lane engines: the same quantized chains, vectorised across columns. Every
// per-column accumulator chain is independent and its add/clamp/mask order is
// untouched, so each lane is bit-identical to its scalar reference — the lane
// engines only change *which columns* advance together.
// ---------------------------------------------------------------------------

/// One fold's worth of batched-scenario work: the `(scenario lane, masked
/// column list)` pairs of every scenario whose plan corrupts that fold.
type FoldLaneMasks<'a> = Vec<(usize, &'a [(u32, PeMasks)])>;

/// One row of the maskless quantized chain across `I64_LANES` contiguous
/// columns at a time; each lane bit-identical to [`quantized_clean_element`]
/// (or the `_tab` variant), which also handle the column tail.
struct CleanRowOp<'a> {
    nz: &'a [(usize, f32)],
    w: &'a [f32],
    qw: Option<&'a [i32]>,
    out_row: &'a mut [f32],
    n: usize,
    format: QFormat,
    min_raw: i64,
    max_raw: i64,
}

impl SimdOp for CleanRowOp<'_> {
    type Output = ();

    #[inline(always)]
    fn run<S: SimdLevel>(self) {
        let Self {
            nz,
            w,
            qw,
            out_row,
            n,
            format,
            min_raw,
            max_raw,
        } = self;
        let lanes = S::I64_LANES;
        let scale = (1i64 << format.frac_bits()) as f32;
        let (min_f, max_f) = (format.min_raw() as f32, format.max_raw() as f32);
        let resolution = format.resolution();
        let mut j = 0usize;
        while j + lanes <= n {
            let mut acc = S::i64_zero();
            match qw {
                Some(qw) => {
                    for &(p, _) in nz {
                        let q = S::i64_load_i32(&qw[p * n + j..]);
                        acc = S::i64_clamp(S::i64_add(acc, q), min_raw, max_raw);
                    }
                }
                None => {
                    for &(p, v) in nz {
                        let x = S::f32h_scale(S::f32h_load(&w[p * n + j..]), v);
                        let q = S::f32h_quantize(x, scale, min_f, max_f);
                        acc = S::i64_clamp(S::i64_add(acc, q), min_raw, max_raw);
                    }
                }
            }
            S::i64_dequantize_store(acc, resolution, &mut out_row[j..]);
            j += lanes;
        }
        for (j, o) in out_row.iter_mut().enumerate().take(n).skip(j) {
            *o = match qw {
                Some(qw) => quantized_clean_element_tab(nz, qw, n, j, format, min_raw, max_raw),
                None => quantized_clean_element(nz, w, n, j, format, min_raw, max_raw),
            };
        }
    }
}

/// The quantized contributions of activation event `(p, v)` for `I64_LANES`
/// same-fold columns (`stride` apart): exactly `quantize(v * w[p, j])` per
/// lane, or a table read for binary activations.
#[inline(always)]
fn strided_q<S: SimdLevel>(
    qw: Option<&[i32]>,
    w: &[f32],
    v: f32,
    base: usize,
    stride: usize,
    format: QFormat,
) -> S::I64 {
    match qw {
        Some(qw) => S::i64_from_fn(|lane| i64::from(qw[base + lane * stride])),
        None => S::i64_from_fn(|lane| i64::from(format.quantize(v * w[base + lane * stride]))),
    }
}

/// The corruptible folds of one output row: all columns of a fold share one
/// masked list, so `I64_LANES` of them walk the composed event stream
/// together — each lane bit-identical to [`faulty_column_composed`] (or the
/// `_tab` variant), which also handle the per-fold column tail.
struct FaultyFoldsOp<'a> {
    plan: &'a FoldPlan,
    nz: &'a [(usize, f32)],
    w: &'a [f32],
    qw: Option<&'a [i32]>,
    out_row: &'a mut [f32],
    n: usize,
    cols: usize,
    format: QFormat,
    min_raw: i64,
    max_raw: i64,
    bypass: bool,
}

impl SimdOp for FaultyFoldsOp<'_> {
    type Output = ();

    #[inline(always)]
    fn run<S: SimdLevel>(self) {
        let Self {
            plan,
            nz,
            w,
            qw,
            out_row,
            n,
            cols,
            format,
            min_raw,
            max_raw,
            bypass,
        } = self;
        let lanes = S::I64_LANES;
        for fold in 0..cols.min(n) {
            if plan.column_is_clean(fold) {
                continue;
            }
            let masked = plan.fold_masked(fold);
            let count = (n - fold).div_ceil(cols);
            let mut g = 0usize;
            while g + lanes <= count {
                let base = fold + g * cols;
                let mut acc = S::i64_zero();
                let mut mi = 0usize;
                if bypass {
                    for &(p, v) in nz {
                        while mi < masked.len() && (masked[mi].0 as usize) < p {
                            mi += 1;
                        }
                        if mi < masked.len() && masked[mi].0 as usize == p {
                            continue;
                        }
                        let q = strided_q::<S>(qw, w, v, p * n + base, cols, format);
                        acc = S::i64_clamp(S::i64_add(acc, q), min_raw, max_raw);
                    }
                } else {
                    for &(p, v) in nz {
                        if mi < masked.len() && (masked[mi].0 as usize) < p {
                            let mut composed = masked[mi].1;
                            mi += 1;
                            while mi < masked.len() && (masked[mi].0 as usize) < p {
                                composed = composed.then(masked[mi].1);
                                mi += 1;
                            }
                            acc = S::i64_map(acc, |raw| apply_masks_raw(raw, composed, format));
                        }
                        let q = strided_q::<S>(qw, w, v, p * n + base, cols, format);
                        acc = S::i64_clamp(S::i64_add(acc, q), min_raw, max_raw);
                    }
                    if mi < masked.len() {
                        let mut composed = masked[mi].1;
                        mi += 1;
                        while mi < masked.len() {
                            composed = composed.then(masked[mi].1);
                            mi += 1;
                        }
                        acc = S::i64_map(acc, |raw| apply_masks_raw(raw, composed, format));
                    }
                }
                for lane in 0..lanes {
                    out_row[base + lane * cols] =
                        format.dequantize(S::i64_extract(acc, lane) as i32);
                }
                g += lanes;
            }
            while g < count {
                let j = fold + g * cols;
                out_row[j] = match qw {
                    Some(qw) => faulty_column_composed_tab(
                        masked, nz, qw, n, j, format, min_raw, max_raw, bypass,
                    ),
                    None => faulty_column_composed(
                        masked, nz, w, n, j, format, min_raw, max_raw, bypass,
                    ),
                };
                g += 1;
            }
        }
    }
}

/// The batched scenario walk: per fold, the strided q block (event-major,
/// `I64_LANES` same-fold columns per event) is built once and replayed under
/// every scenario that corrupts the fold — each lane bit-identical to
/// [`faulty_column_from_q`], which also handles the per-fold column tail.
struct ScenarioFoldsOp<'a> {
    folds: &'a [FoldLaneMasks<'a>],
    nz: &'a [(usize, f32)],
    w: &'a [f32],
    qw: Option<&'a [i32]>,
    row_chunk: &'a mut [f32],
    q: &'a mut Vec<i64>,
    n: usize,
    cols: usize,
    format: QFormat,
    min_raw: i64,
    max_raw: i64,
    bypass: bool,
}

impl SimdOp for ScenarioFoldsOp<'_> {
    type Output = ();

    #[inline(always)]
    fn run<S: SimdLevel>(self) {
        let Self {
            folds,
            nz,
            w,
            qw,
            row_chunk,
            q,
            n,
            cols,
            format,
            min_raw,
            max_raw,
            bypass,
        } = self;
        let lanes = S::I64_LANES;
        for (fold, users) in folds.iter().enumerate() {
            if users.is_empty() || fold >= n {
                continue;
            }
            let count = (n - fold).div_ceil(cols);
            let mut g = 0usize;
            while g + lanes <= count {
                let base = fold + g * cols;
                q.clear();
                match qw {
                    Some(qw) => {
                        for &(p, _) in nz {
                            q.extend(
                                (0..lanes).map(|lane| i64::from(qw[p * n + base + lane * cols])),
                            );
                        }
                    }
                    None => {
                        for &(p, v) in nz {
                            q.extend((0..lanes).map(|lane| {
                                i64::from(format.quantize(v * w[p * n + base + lane * cols]))
                            }));
                        }
                    }
                }
                for &(fi, masked) in users.iter() {
                    let acc = walk_q_block::<S>(masked, nz, q, format, min_raw, max_raw, bypass);
                    for lane in 0..lanes {
                        row_chunk[fi * n + base + lane * cols] =
                            format.dequantize(S::i64_extract(acc, lane) as i32);
                    }
                }
                g += lanes;
            }
            while g < count {
                let j = fold + g * cols;
                q.clear();
                match qw {
                    Some(qw) => q.extend(nz.iter().map(|&(p, _)| i64::from(qw[p * n + j]))),
                    None => q.extend(
                        nz.iter()
                            .map(|&(p, v)| i64::from(format.quantize(v * w[p * n + j]))),
                    ),
                }
                for &(fi, masked) in users.iter() {
                    row_chunk[fi * n + j] =
                        faulty_column_from_q(masked, nz, q, format, min_raw, max_raw, bypass);
                }
                g += 1;
            }
        }
    }
}

/// [`faulty_column_from_q`] across `I64_LANES` columns at once: `q_block` is
/// event-major (`I64_LANES` words per nonzero event). Same merged walk, same
/// composed masks, same per-lane order.
#[inline(always)]
fn walk_q_block<S: SimdLevel>(
    masked: &[(u32, PeMasks)],
    nonzero: &[(usize, f32)],
    q_block: &[i64],
    format: QFormat,
    min_raw: i64,
    max_raw: i64,
    bypass: bool,
) -> S::I64 {
    let lanes = S::I64_LANES;
    let mut acc = S::i64_zero();
    let mut mi = 0usize;
    if bypass {
        for (e, &(p, _)) in nonzero.iter().enumerate() {
            while mi < masked.len() && (masked[mi].0 as usize) < p {
                mi += 1;
            }
            if mi < masked.len() && masked[mi].0 as usize == p {
                continue;
            }
            let q = S::i64_load(&q_block[e * lanes..]);
            acc = S::i64_clamp(S::i64_add(acc, q), min_raw, max_raw);
        }
        return acc;
    }
    for (e, &(p, _)) in nonzero.iter().enumerate() {
        if mi < masked.len() && (masked[mi].0 as usize) < p {
            let mut composed = masked[mi].1;
            mi += 1;
            while mi < masked.len() && (masked[mi].0 as usize) < p {
                composed = composed.then(masked[mi].1);
                mi += 1;
            }
            acc = S::i64_map(acc, |raw| apply_masks_raw(raw, composed, format));
        }
        let q = S::i64_load(&q_block[e * lanes..]);
        acc = S::i64_clamp(S::i64_add(acc, q), min_raw, max_raw);
    }
    if mi < masked.len() {
        let mut composed = masked[mi].1;
        mi += 1;
        while mi < masked.len() {
            composed = composed.then(masked[mi].1);
            mi += 1;
        }
        acc = S::i64_map(acc, |raw| apply_masks_raw(raw, composed, format));
    }
    acc
}

/// Faulty column via the full `k`-step replay (the pre-composition engine):
/// every accumulation step looks up and applies its mask, zero activations
/// included. Kept as the reference for bit-identity tests and benchmarks.
fn faulty_column_replay(
    plan: &FoldPlan,
    j: usize,
    a_row: &[f32],
    w: &[f32],
    n: usize,
    format: QFormat,
    bypass: bool,
) -> f32 {
    let fold = plan.fold_masks(j);
    let mut acc = Fixed::zero(format);
    for (p, &a_ip) in a_row.iter().enumerate() {
        let masks = fold[p];
        if bypass && masks.is_some() {
            continue;
        }
        if a_ip != 0.0 {
            let contribution = Fixed::from_f32(a_ip * w[p * n + j], format);
            acc = acc.saturating_add(contribution);
        }
        if let Some(masks) = masks {
            acc = masks.apply(acc);
        }
    }
    acc.to_f32()
}

/// Precomputed fault state for one matrix product: which PE masks apply to
/// every `(k, column-fold)` pair, hoisted out of the per-element loops.
///
/// Weight element `(p, j)` resides in PE `(p mod rows, j mod cols)`, so the
/// mask chain of an output column depends only on `j mod cols`. The plan
/// stores, for each of the `cols` folds, a `k`-long mask vector (resolving
/// the `p mod rows` indirection once), a per-fold cleanliness flag used to
/// fast-path unaffected columns, and the *sparse* list of masked positions
/// that the composed event walk merges with each row's nonzero activations.
///
/// # Example
///
/// ```
/// use falvolt_systolic::executor::FoldPlan;
/// use falvolt_systolic::{FaultMap, SystolicConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let config = SystolicConfig::new(4, 4)?;
/// let plan = FoldPlan::new(&config, &FaultMap::new(config), 16);
/// assert!(!plan.any_fault());
/// assert!(plan.column_is_clean(7));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct FoldPlan {
    /// `cols * k` masks, laid out fold-major so one column's chain is
    /// contiguous: entry `fold * k + p`. Only materialised when the replay
    /// path needs it ([`FoldPlan::new`]); the composed walk builds plans
    /// with [`FoldPlan::without_replay_chains`], whose construction cost is
    /// O(faults * k / rows) instead of O(cols * k) — the dense chain was the
    /// dominant per-product setup cost for deep fully connected layers.
    masks: Vec<Option<PeMasks>>,
    /// Per-fold sparse view of the chain: the `(p, masks)` pairs where a
    /// mask exists, in increasing `p`. `(#faulty rows of the fold) *
    /// ceil(k / rows)` entries — what makes the composed walk O(nnz +
    /// masked) instead of O(k).
    masked: Vec<Vec<(u32, PeMasks)>>,
    /// Per-fold flag: `true` when no PE of that grid column masks any of the
    /// `k` chain positions.
    fold_clean: Vec<bool>,
    k: usize,
    cols: usize,
    any_fault: bool,
    has_replay_chains: bool,
}

impl FoldPlan {
    /// Builds the full plan (sparse masked lists *and* the dense replay
    /// chains) for products with inner dimension `k` on `config`'s grid
    /// under `fault_map`.
    pub fn new(config: &SystolicConfig, fault_map: &FaultMap, k: usize) -> Self {
        Self::build(config, fault_map, k, true)
    }

    /// Builds the plan without the dense replay chains — all the composed
    /// event walk and the clean-column fast paths need.
    /// [`FoldPlan::fold_masks`] panics on such a plan.
    pub fn without_replay_chains(config: &SystolicConfig, fault_map: &FaultMap, k: usize) -> Self {
        Self::build(config, fault_map, k, false)
    }

    fn build(
        config: &SystolicConfig,
        fault_map: &FaultMap,
        k: usize,
        with_replay_chains: bool,
    ) -> Self {
        let rows = config.rows();
        let cols = config.cols();
        let any_fault = !fault_map.is_empty();
        let mut masked = vec![Vec::new(); cols];
        let mut fold_clean = vec![true; cols];
        if any_fault {
            // Unfold each faulty PE to its chain positions: weight row p maps
            // to PE row `p mod rows`, so PE (r, c) masks positions r, r +
            // rows, ... of fold c. Distinct PEs of one column never collide
            // on a position, so a sort yields the increasing-p walk order.
            for pe in fault_map.faulty_pes() {
                // faulty_pes() only yields masked PEs; a PE the map no
                // longer masks simply contributes no masked positions.
                let Some(masks) = fault_map.masks(pe) else {
                    continue;
                };
                let mut p = pe.row;
                while p < k {
                    masked[pe.col].push((p as u32, masks));
                    p += rows;
                }
            }
            for (fold, list) in masked.iter_mut().enumerate() {
                list.sort_unstable_by_key(|&(p, _)| p);
                // A faulty PE whose row exceeds k masks nothing: the fold
                // stays clean for this product, exactly as the dense chain
                // (all-None) reports.
                fold_clean[fold] = list.is_empty();
            }
        }
        let masks = if with_replay_chains && any_fault {
            let mut dense = vec![None; cols * k];
            for (fold, list) in masked.iter().enumerate() {
                let chain = &mut dense[fold * k..(fold + 1) * k];
                for &(p, pe_masks) in list {
                    chain[p as usize] = Some(pe_masks);
                }
            }
            dense
        } else if with_replay_chains {
            vec![None; cols * k]
        } else {
            Vec::new()
        };
        Self {
            masks,
            masked,
            fold_clean,
            k,
            cols,
            any_fault,
            has_replay_chains: with_replay_chains,
        }
    }

    /// `true` when the fault map holds at least one fault.
    pub fn any_fault(&self) -> bool {
        self.any_fault
    }

    /// `true` when output column `j` cannot be corrupted (its PE column holds
    /// no faulty PE masking a chain position).
    pub fn column_is_clean(&self, j: usize) -> bool {
        self.fold_clean[j % self.cols]
    }

    /// The `k`-long mask chain of output column `j`.
    ///
    /// # Panics
    ///
    /// Panics when the plan was built with
    /// [`FoldPlan::without_replay_chains`].
    pub fn fold_masks(&self, j: usize) -> &[Option<PeMasks>] {
        assert!(
            self.has_replay_chains,
            "replay chains were not built; construct the plan with FoldPlan::new"
        );
        let fold = j % self.cols;
        &self.masks[fold * self.k..(fold + 1) * self.k]
    }

    /// The sparse masked positions of output column `j`, in increasing `p`.
    pub fn fold_masked(&self, j: usize) -> &[(u32, PeMasks)] {
        &self.masked[j % self.cols]
    }
}

/// Where one scenario's matrix lives inside a [`ScenarioMatrices`] batch.
#[derive(Debug, Clone)]
enum ScenarioLane {
    /// Faulty scenario: lane `fi` of the interleaved buffer.
    Lane(usize),
    /// Fault-free scenario: the shared fast-path product.
    Shared(Arc<Tensor>),
}

/// Scenario-major view over the batched walk's interleaved output buffer.
///
/// [`SystolicExecutor::matmul_scenarios_view`] returns the buffer as-is
/// (row-major, all scenario lanes of one output row contiguous) instead of
/// de-interleaving it into one tensor per map — an O(maps · m · n) memcpy
/// that dominated short batched products. Rows are read in place with
/// [`ScenarioMatrices::row`]; a full tensor for one scenario is gathered on
/// demand with [`ScenarioMatrices::tensor`], bit-identical to the eager
/// [`SystolicExecutor::matmul_scenarios_hinted`] output.
#[derive(Debug, Clone)]
pub struct ScenarioMatrices {
    m: usize,
    n: usize,
    /// Interleaved lane count: faulty scenarios plus the derived-clean lane
    /// when no sweep-shared clean product was available.
    lanes: usize,
    /// `m * lanes * n` interleaved values (empty when every scenario is
    /// fault-free or a dimension is zero).
    inter: Vec<f32>,
    /// Per-scenario location, in input map order.
    lane_of: Vec<ScenarioLane>,
}

impl ScenarioMatrices {
    /// Number of scenarios in the batch (the input map count).
    pub fn scenarios(&self) -> usize {
        self.lane_of.len()
    }

    /// Output dimensions `(m, n)` shared by every scenario.
    pub fn dims(&self) -> (usize, usize) {
        (self.m, self.n)
    }

    /// Output row `i` of scenario `s`, read in place (no copy).
    ///
    /// # Panics
    ///
    /// Panics when `s` or `i` is out of range.
    pub fn row(&self, s: usize, i: usize) -> &[f32] {
        assert!(i < self.m, "row {i} out of range for {} rows", self.m);
        match &self.lane_of[s] {
            ScenarioLane::Shared(t) => &t.data()[i * self.n..(i + 1) * self.n],
            ScenarioLane::Lane(fi) => {
                let start = i * self.lanes * self.n + fi * self.n;
                &self.inter[start..start + self.n]
            }
        }
    }

    /// Materialises scenario `s` as an `[m, n]` tensor — the single-scenario
    /// gather the eager API performed for every scenario.
    ///
    /// # Errors
    ///
    /// Returns a tensor error when the gathered buffer cannot form an
    /// `[m, n]` tensor (cannot happen for a view built by the executor).
    ///
    /// # Panics
    ///
    /// Panics when `s` is out of range.
    pub fn tensor(&self, s: usize) -> Result<Tensor> {
        match &self.lane_of[s] {
            ScenarioLane::Shared(t) => Ok(t.as_ref().clone()),
            ScenarioLane::Lane(fi) => {
                let mut data = vec![0.0f32; self.m * self.n];
                let row_stride = self.lanes * self.n;
                for i in 0..self.m {
                    let start = i * row_stride + fi * self.n;
                    data[i * self.n..(i + 1) * self.n]
                        .copy_from_slice(&self.inter[start..start + self.n]);
                }
                Ok(Tensor::from_vec(vec![self.m, self.n], data)?)
            }
        }
    }

    /// Materialises every scenario in input order (the eager API's output).
    ///
    /// # Errors
    ///
    /// Returns a tensor error when a gather cannot form an `[m, n]` tensor
    /// (cannot happen for a view built by the executor).
    pub fn into_tensors(self) -> Result<Vec<Tensor>> {
        (0..self.scenarios()).map(|s| self.tensor(s)).collect()
    }
}

/// Finalizes the scenario→lane table. Every scenario must have been
/// assigned a lane by construction; a gap is a builder bug, surfaced as a
/// typed error so a campaign worker survives it instead of unwinding.
fn lane_table(lane_of: Vec<Option<ScenarioLane>>) -> Result<Vec<ScenarioLane>> {
    lane_of
        .into_iter()
        .collect::<Option<Vec<_>>>()
        .ok_or(SystolicError::Internal {
            what: "scenario lane table left a scenario unassigned",
        })
}

fn matrix_dims(t: &Tensor) -> Result<(usize, usize)> {
    if t.ndim() != 2 {
        return Err(SystolicError::Tensor(TensorError::RankMismatch {
            expected: 2,
            actual: t.ndim(),
        }));
    }
    Ok((t.shape()[0], t.shape()[1]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Fault, PeCoord, StuckAt};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn config() -> SystolicConfig {
        SystolicConfig::new(4, 4).unwrap()
    }

    fn max_abs_diff(a: &Tensor, b: &Tensor) -> f32 {
        a.data()
            .iter()
            .zip(b.data())
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f32::max)
    }

    #[test]
    fn fault_free_array_matches_float_matmul_within_resolution() {
        let config = config();
        let executor = SystolicExecutor::new(config, FaultMap::new(config));
        let mut rng = StdRng::seed_from_u64(2);
        let a = falvolt_tensor::init::uniform(&[5, 7], 0.0, 1.0, &mut rng);
        let b = falvolt_tensor::init::uniform(&[7, 6], -0.5, 0.5, &mut rng);
        let faulty = executor.matmul(&a, &b).unwrap();
        let clean = executor.clean_matmul(&a, &b).unwrap();
        // Each of the 7 accumulation steps quantizes to 1/256 resolution.
        assert!(max_abs_diff(&faulty, &clean) < 7.0 / 256.0 + 1e-4);
    }

    #[test]
    fn binary_spike_inputs_are_exact_for_small_weights() {
        // With binary inputs and weights on the fixed-point lattice the
        // systolic result is exact.
        let config = config();
        let executor = SystolicExecutor::new(config, FaultMap::new(config));
        let a = Tensor::from_vec(vec![2, 4], vec![1.0, 0.0, 1.0, 1.0, 0.0, 1.0, 0.0, 1.0]).unwrap();
        let b = Tensor::from_fn(&[4, 3], |i| (i % 5) as f32 * 0.25);
        let faulty = executor.matmul(&a, &b).unwrap();
        let clean = executor.clean_matmul(&a, &b).unwrap();
        assert_eq!(faulty.data(), clean.data());
    }

    #[test]
    fn stuck_at_one_msb_corrupts_affected_columns_only() {
        let config = config();
        // Fault in PE (0, 1): affects output columns j with j % 4 == 1.
        let fault_map = FaultMap::from_faults(
            config,
            vec![Fault::new(PeCoord::new(0, 1), 15, StuckAt::One)],
        )
        .unwrap();
        let executor = SystolicExecutor::new(config, fault_map);
        let a = Tensor::ones(&[1, 4]);
        let b = Tensor::full(&[4, 4], 0.5);
        let out = executor.matmul(&a, &b).unwrap();
        let clean = executor.clean_matmul(&a, &b).unwrap();
        for j in 0..4 {
            let diff = (out.get(&[0, j]) - clean.get(&[0, j])).abs();
            if j == 1 {
                assert!(diff > 10.0, "column 1 must be corrupted, diff {diff}");
            } else {
                assert!(diff < 1e-3, "column {j} must be clean, diff {diff}");
            }
        }
    }

    #[test]
    fn stuck_at_zero_lsb_is_mild() {
        let config = config();
        let fault_map = FaultMap::from_faults(
            config,
            vec![Fault::new(PeCoord::new(0, 0), 0, StuckAt::Zero)],
        )
        .unwrap();
        let executor = SystolicExecutor::new(config, fault_map);
        let a = Tensor::ones(&[1, 4]);
        let b = Tensor::full(&[4, 4], 0.5);
        let out = executor.matmul(&a, &b).unwrap();
        let clean = executor.clean_matmul(&a, &b).unwrap();
        // LSB stuck-at-0 can change each pass by at most one resolution step.
        assert!(max_abs_diff(&out, &clean) <= 4.0 / 256.0 + 1e-6);
    }

    #[test]
    fn bypass_skips_faulty_contribution_instead_of_corrupting() {
        let config = config();
        let fault_map = FaultMap::from_faults(
            config,
            vec![Fault::new(PeCoord::new(2, 1), 15, StuckAt::One)],
        )
        .unwrap();
        let executor = SystolicExecutor::with_bypass(config, fault_map, BypassPolicy::SkipFaulty);
        let a = Tensor::ones(&[1, 4]);
        let b = Tensor::full(&[4, 4], 0.5);
        let out = executor.matmul(&a, &b).unwrap();
        // Column 1 loses the contribution of k = 2 (weight 0.5): 2.0 -> 1.5.
        assert!((out.get(&[0, 1]) - 1.5).abs() < 1e-3);
        // Other columns unaffected.
        assert!((out.get(&[0, 0]) - 2.0).abs() < 1e-3);
        assert!((out.get(&[0, 3]) - 2.0).abs() < 1e-3);
    }

    #[test]
    fn weight_folding_reuses_faulty_pe_across_tiles() {
        // K = 8 on a 4-row array: rows 0..4 and 4..8 share PEs. A fault in
        // PE (0, 0) must therefore corrupt contributions from k = 0 and k = 4.
        let config = config();
        let fault_map = FaultMap::from_faults(
            config,
            vec![Fault::new(PeCoord::new(0, 0), 15, StuckAt::One)],
        )
        .unwrap();
        let executor = SystolicExecutor::with_bypass(config, fault_map, BypassPolicy::SkipFaulty);
        let a = Tensor::ones(&[1, 8]);
        let b = Tensor::full(&[8, 4], 0.5);
        let out = executor.matmul(&a, &b).unwrap();
        // Column 0 loses k=0 and k=4 contributions: 4.0 - 1.0 = 3.0.
        assert!((out.get(&[0, 0]) - 3.0).abs() < 1e-3);
    }

    #[test]
    fn zero_width_products_are_empty_not_panics() {
        let config = config();
        let fault_map = FaultMap::from_faults(
            config,
            vec![Fault::new(PeCoord::new(0, 0), 15, StuckAt::One)],
        )
        .unwrap();
        let executor = SystolicExecutor::new(config, fault_map);
        let a = Tensor::zeros(&[3, 4]);
        let b = Tensor::zeros(&[4, 0]);
        let out = executor.matmul(&a, &b).unwrap();
        assert_eq!(out.shape(), &[3, 0]);
        let empty_rows = executor.matmul(&Tensor::zeros(&[0, 4]), &Tensor::zeros(&[4, 2]));
        assert_eq!(empty_rows.unwrap().shape(), &[0, 2]);
    }

    #[test]
    fn faulty_path_is_bit_identical_for_every_hint() {
        // Fault corruption must not depend on the operand-structure hint:
        // spike activations through a faulty array give the same bits whether
        // the caller declared them Dense, Spikes or left it to Auto.
        let config = config();
        let mut rng = StdRng::seed_from_u64(9);
        let fault_map =
            FaultMap::random_faulty_pes(&config, 3, 15, StuckAt::One, &mut rng).unwrap();
        let executor = SystolicExecutor::new(config, fault_map);
        let a = Tensor::from_fn(&[6, 9], |i| ((i % 5) == 0) as u8 as f32);
        let b = Tensor::from_fn(&[9, 7], |i| (i % 13) as f32 * 0.03 - 0.15);
        let dense = executor
            .matmul_hinted(&a, &b, falvolt_tensor::MatmulHint::Dense)
            .unwrap();
        for hint in [
            falvolt_tensor::MatmulHint::Auto,
            falvolt_tensor::MatmulHint::Spikes,
        ] {
            let out = executor.matmul_hinted(&a, &b, hint).unwrap();
            assert_eq!(out.data(), dense.data(), "hint {hint:?} changed bits");
        }
    }

    #[test]
    fn fault_free_path_dispatches_sparse_spikes_consistently() {
        let config = config();
        let executor = SystolicExecutor::new(config, FaultMap::new(config));
        // 10% binary density: Auto and Spikes take the event kernel.
        let a = Tensor::from_fn(&[8, 40], |i| ((i % 10) == 0) as u8 as f32);
        let b = Tensor::from_fn(&[40, 6], |i| (i % 7) as f32 * 0.11 - 0.3);
        let dense = executor
            .matmul_hinted(&a, &b, falvolt_tensor::MatmulHint::Dense)
            .unwrap();
        let auto = executor
            .matmul_hinted(&a, &b, falvolt_tensor::MatmulHint::Auto)
            .unwrap();
        for (x, y) in auto.data().iter().zip(dense.data()) {
            assert!((x - y).abs() < 1e-5, "{x} vs {y}");
        }
    }

    #[test]
    fn matmul_validates_shapes() {
        let config = config();
        let executor = SystolicExecutor::new(config, FaultMap::new(config));
        let a = Tensor::ones(&[2, 3]);
        let b = Tensor::ones(&[4, 2]);
        assert!(executor.matmul(&a, &b).is_err());
        let v = Tensor::ones(&[3]);
        assert!(executor.matmul(&v, &b).is_err());
    }

    #[test]
    fn set_fault_map_and_policy_take_effect() {
        let config = config();
        let mut executor = SystolicExecutor::new(config, FaultMap::new(config));
        let a = Tensor::ones(&[1, 4]);
        let b = Tensor::full(&[4, 4], 0.5);
        let clean = executor.matmul(&a, &b).unwrap();

        let fault_map = FaultMap::from_faults(
            config,
            vec![Fault::new(PeCoord::new(0, 0), 15, StuckAt::One)],
        )
        .unwrap();
        executor.set_fault_map(fault_map);
        let faulty = executor.matmul(&a, &b).unwrap();
        assert!(max_abs_diff(&clean, &faulty) > 1.0);

        executor.set_bypass_policy(BypassPolicy::SkipFaulty);
        assert_eq!(executor.bypass_policy(), BypassPolicy::SkipFaulty);
        let bypassed = executor.matmul(&a, &b).unwrap();
        assert!(max_abs_diff(&clean, &bypassed) <= 0.5 + 1e-3);
    }

    /// Random executors under every (composed, cached) regime must agree
    /// bit-for-bit with the replayed, uncached engine — including bypass.
    #[test]
    fn composed_and_cached_paths_are_bit_identical_to_replay() {
        let config = SystolicConfig::new(4, 6).unwrap();
        let mut rng = StdRng::seed_from_u64(17);
        for faulty_pes in [1usize, 3, 8] {
            for bypass in [BypassPolicy::None, BypassPolicy::SkipFaulty] {
                let fault_map = FaultMap::random_msb_faults(&config, faulty_pes, &mut rng).unwrap();
                // Mixed spike/real activations with zero rows and a k that
                // wraps the 4-row grid several times; m is large enough for
                // the executor to consult the product cache (hash gate).
                let a = Tensor::from_fn(&[40, 19], |i| match i % 6 {
                    0 => 1.0,
                    1 => -0.75,
                    _ => 0.0,
                });
                let b = Tensor::from_fn(&[19, 9], |i| (i % 17) as f32 * 0.06 - 0.4);

                let mut replay = SystolicExecutor::with_bypass(config, fault_map.clone(), bypass);
                replay.set_composed_mask_chains(false);
                let reference = replay.matmul(&a, &b).unwrap();

                let composed = SystolicExecutor::with_bypass(config, fault_map.clone(), bypass);
                assert_eq!(
                    composed.matmul(&a, &b).unwrap().data(),
                    reference.data(),
                    "composed chains changed bits ({faulty_pes} PEs, {bypass:?})"
                );

                let shared = Arc::new(ProductCache::new());
                let mut cached = SystolicExecutor::with_bypass(config, fault_map, bypass);
                cached.set_product_cache(Some(Arc::clone(&shared)));
                // Three calls: skip, promote-and-fulfill, hit — all equal.
                for call in 0..3 {
                    assert_eq!(
                        cached.matmul(&a, &b).unwrap().data(),
                        reference.data(),
                        "cached call {call} changed bits ({faulty_pes} PEs, {bypass:?})"
                    );
                }
                assert!(
                    shared.hits() >= 1,
                    "the cached path was never exercised ({faulty_pes} PEs, {bypass:?})"
                );
            }
        }
    }

    /// The batched multi-map product must agree bit-for-bit with installing
    /// each map on its own executor — mixed clean/faulty maps, both bypass
    /// policies, with and without a CSR spike index on the activations.
    #[test]
    fn matmul_scenarios_matches_per_map_matmul_bit_for_bit() {
        let config = SystolicConfig::new(4, 6).unwrap();
        let mut rng = StdRng::seed_from_u64(41);
        let mut maps = vec![FaultMap::new(config)];
        for faulty_pes in [1usize, 3, 6, 9] {
            maps.push(FaultMap::random_msb_faults(&config, faulty_pes, &mut rng).unwrap());
        }
        let spikes = Tensor::from_fn(&[18, 21], |i| ((i % 4) == 0) as u8 as f32);
        let indexed = spikes.clone().with_spike_index(Arc::new(
            falvolt_tensor::SpikeIndex::from_dense(spikes.data(), 21).unwrap(),
        ));
        let mixed = Tensor::from_fn(&[18, 21], |i| match i % 5 {
            0 => 1.0,
            1 => -0.6,
            _ => 0.0,
        });
        let b = Tensor::from_fn(&[21, 9], |i| (i % 13) as f32 * 0.05 - 0.3);
        for bypass in [BypassPolicy::None, BypassPolicy::SkipFaulty] {
            for a in [&spikes, &indexed, &mixed] {
                let executor = SystolicExecutor::with_bypass(config, FaultMap::new(config), bypass);
                let batched = executor.matmul_scenarios(a, &b, &maps).unwrap();
                assert_eq!(batched.len(), maps.len());
                for (s, map) in maps.iter().enumerate() {
                    let single = SystolicExecutor::with_bypass(config, map.clone(), bypass);
                    let reference = single.matmul(a, &b).unwrap();
                    assert_eq!(
                        batched[s].data(),
                        reference.data(),
                        "scenario {s} diverged ({bypass:?})"
                    );
                }
            }
        }
        // Degenerate shapes: empty scenario lists and zero-width products.
        let none: Vec<Tensor> = SystolicExecutor::new(config, FaultMap::new(config))
            .matmul_scenarios(&mixed, &b, &[])
            .unwrap();
        assert!(none.is_empty());
        let empty = SystolicExecutor::new(config, FaultMap::new(config))
            .matmul_scenarios(&Tensor::zeros(&[0, 21]), &b, &maps)
            .unwrap();
        assert!(empty.iter().all(|t| t.shape() == [0, 9]));
    }

    #[test]
    fn fold_plan_masked_lists_match_dense_chain() {
        let config = SystolicConfig::new(4, 4).unwrap();
        let mut rng = StdRng::seed_from_u64(23);
        let fault_map =
            FaultMap::random_faulty_pes(&config, 5, 15, StuckAt::One, &mut rng).unwrap();
        let plan = FoldPlan::new(&config, &fault_map, 22);
        for j in 0..8 {
            let dense = plan.fold_masks(j);
            let sparse = plan.fold_masked(j);
            let from_dense: Vec<(u32, PeMasks)> = dense
                .iter()
                .enumerate()
                .filter_map(|(p, m)| m.map(|m| (p as u32, m)))
                .collect();
            assert_eq!(sparse, from_dense.as_slice(), "fold of column {j}");
            assert_eq!(plan.column_is_clean(j), sparse.is_empty());
        }
    }

    #[test]
    fn mask_composition_is_exact_and_idempotent() {
        let q = QFormat::accumulator_default();
        let m1 = PeMasks {
            and_mask: !(1u32 << 3),
            or_mask: 1 << 15,
        };
        let m2 = PeMasks {
            and_mask: !(1u32 << 15),
            or_mask: 0b101,
        };
        for raw in [-30000i32, -1, 0, 1, 517, 32767] {
            let x = Fixed::from_raw(raw, q);
            let sequential = m2.apply(m1.apply(x));
            let composed = m1.then(m2).apply(x);
            assert_eq!(sequential, composed, "raw {raw}");
        }
        let twice = m1.then(m1);
        assert_eq!(twice, m1, "mask pairs are idempotent under composition");
    }
}
