//! Generic promote-on-second-request value store.
//!
//! Several sweep-sharing caches follow the same protocol: the first sighting
//! of a key only records interest (compute inline, store nothing), a second
//! sighting proves the key is shared across workers (that caller computes
//! and fulfils the shared value), and everyone after hits. Exactly one
//! caller per key is ever told to compute — racers fall back to inline
//! computation while the value is in flight. [`SharedStore`] is the single
//! implementation behind the clean-product and quantized-weight stores of
//! [`crate::ProductCache`] and the multi-map batch store of the experiment
//! layer, so the subtle locking logic lives in one place.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Tracked-key bound as a multiple of the value capacity. Pending markers
/// are 16-byte bookkeeping; one-shot keys arrive in volume (per-scenario
/// operands mint fresh content ids) and must not lock genuinely shared keys
/// out of promotion — only the map itself needs a growth bound.
const TRACKED_PER_CAPACITY: usize = 16;

/// What the caller should do after a store lookup.
#[derive(Debug, Clone)]
pub enum StoreDecision<T> {
    /// The value is cached — use it.
    Hit(Arc<T>),
    /// This key is shared across workers: compute the value and hand it
    /// back via [`SharedStore::fulfill`] (or release the slot with
    /// [`SharedStore::abandon`] on failure).
    Compute,
    /// No usable entry (first sighting, in-flight key, or capacity
    /// overflow) — compute whatever subset is needed inline, store nothing.
    Skip,
}

enum Slot<T> {
    /// Seen once; not yet worth materialising.
    Pending,
    /// A worker is computing the shared value.
    Computing,
    /// Computed and shared.
    Ready(Arc<T>),
}

struct Inner<T> {
    slots: HashMap<u128, Slot<T>>,
    /// Keys promoted to `Computing`/`Ready` — what the capacity bounds.
    promoted: usize,
}

/// One promote-on-second-request store (see the module docs).
pub struct SharedStore<T> {
    inner: Mutex<Inner<T>>,
    hits: AtomicUsize,
    promotions: AtomicUsize,
    skips: AtomicUsize,
}

impl<T> Default for SharedStore<T> {
    fn default() -> Self {
        Self {
            inner: Mutex::new(Inner {
                slots: HashMap::new(),
                promoted: 0,
            }),
            hits: AtomicUsize::new(0),
            promotions: AtomicUsize::new(0),
            skips: AtomicUsize::new(0),
        }
    }
}

impl<T> SharedStore<T> {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks `key` up under a `capacity` bound on promoted values. `eager`
    /// callers know their key is shared by construction (the value is being
    /// computed either way, fulfilment just keeps it), so a first sighting
    /// promotes immediately instead of waiting for a second worker.
    pub fn lookup(&self, key: u128, capacity: usize, eager: bool) -> StoreDecision<T> {
        let mut inner = self.inner.lock().expect("shared store poisoned");
        match inner.slots.get(&key) {
            Some(Slot::Ready(value)) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                StoreDecision::Hit(Arc::clone(value))
            }
            Some(Slot::Pending) => {
                if inner.promoted < capacity {
                    self.promotions.fetch_add(1, Ordering::Relaxed);
                    inner.promoted += 1;
                    inner.slots.insert(key, Slot::Computing);
                    StoreDecision::Compute
                } else {
                    self.skips.fetch_add(1, Ordering::Relaxed);
                    StoreDecision::Skip
                }
            }
            Some(Slot::Computing) => {
                self.skips.fetch_add(1, Ordering::Relaxed);
                StoreDecision::Skip
            }
            None => {
                if eager && inner.promoted < capacity {
                    self.promotions.fetch_add(1, Ordering::Relaxed);
                    inner.promoted += 1;
                    inner.slots.insert(key, Slot::Computing);
                    return StoreDecision::Compute;
                }
                self.skips.fetch_add(1, Ordering::Relaxed);
                if inner.slots.len() < capacity * TRACKED_PER_CAPACITY {
                    inner.slots.insert(key, Slot::Pending);
                }
                StoreDecision::Skip
            }
        }
    }

    /// Stores a computed value for a key previously answered with
    /// [`StoreDecision::Compute`].
    pub fn fulfill(&self, key: u128, value: Arc<T>) {
        let mut inner = self.inner.lock().expect("shared store poisoned");
        inner.slots.insert(key, Slot::Ready(value));
    }

    /// Releases an in-flight promotion whose computation failed: the key
    /// returns to `Pending`, so a later caller may promote it again instead
    /// of skipping forever.
    pub fn abandon(&self, key: u128) {
        let mut inner = self.inner.lock().expect("shared store poisoned");
        if matches!(inner.slots.get(&key), Some(Slot::Computing)) {
            inner.promoted -= 1;
            inner.slots.insert(key, Slot::Pending);
        }
    }

    /// Number of tracked keys (pending and fulfilled).
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .expect("shared store poisoned")
            .slots
            .len()
    }

    /// `true` when nothing is tracked.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups served from a fulfilled entry.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that asked the caller to compute-and-fulfill.
    pub fn promotions(&self) -> usize {
        self.promotions.load(Ordering::Relaxed)
    }

    /// Lookups that found no usable entry.
    pub fn skips(&self) -> usize {
        self.skips.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn promote_on_second_then_hit_and_abandon_releases() {
        let store: SharedStore<Vec<u8>> = SharedStore::new();
        assert!(matches!(store.lookup(1, 4, false), StoreDecision::Skip));
        assert!(matches!(store.lookup(1, 4, false), StoreDecision::Compute));
        // In flight: racers skip; abandon returns the key to Pending.
        assert!(matches!(store.lookup(1, 4, false), StoreDecision::Skip));
        store.abandon(1);
        assert!(matches!(store.lookup(1, 4, false), StoreDecision::Compute));
        store.fulfill(1, Arc::new(vec![7]));
        assert!(matches!(store.lookup(1, 4, false), StoreDecision::Hit(_)));
        assert_eq!((store.hits(), store.promotions()), (1, 2));
    }

    #[test]
    fn eager_promotes_on_first_sighting_within_capacity() {
        let store: SharedStore<u32> = SharedStore::new();
        assert!(matches!(store.lookup(5, 1, true), StoreDecision::Compute));
        store.fulfill(5, Arc::new(9));
        // Capacity exhausted: further eager first-sightings degrade to the
        // pending protocol.
        assert!(matches!(store.lookup(6, 1, true), StoreDecision::Skip));
        assert!(matches!(store.lookup(5, 1, true), StoreDecision::Hit(_)));
    }
}
