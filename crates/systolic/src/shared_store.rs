//! Generic promote-on-second-request value store.
//!
//! Several sweep-sharing caches follow the same protocol: the first sighting
//! of a key only records interest (compute inline, store nothing), a second
//! sighting proves the key is shared across workers (that caller computes
//! and fulfils the shared value), and everyone after hits. Exactly one
//! caller per key is ever told to compute — racers fall back to inline
//! computation while the value is in flight. [`SharedStore`] is the single
//! implementation behind the clean-product and quantized-weight stores of
//! [`crate::ProductCache`] and the multi-map batch store of the experiment
//! layer, so the subtle locking logic lives in one place.
//!
//! # Resilience
//!
//! The store is built to survive panicking workers:
//!
//! * **Poison-recovering locks.** A worker that panics while holding the
//!   mutex must not wedge every other worker. The internal lock accessor
//!   recovers from poison, and — because the panicking holder may have left
//!   bookkeeping half-done — conservatively quarantines all in-flight
//!   promotions on recovery.
//! * **Generation-tagged promotions.** Every [`StoreDecision::Compute`]
//!   promotion records the store's current *generation*.
//!   [`SharedStore::quarantine_in_flight`] (called by schedulers after
//!   catching a worker panic) bumps the generation and reverts every
//!   in-flight `Computing` slot to `Pending`, releasing its capacity.
//! * **Conditional fulfilment.** [`SharedStore::fulfill`] only lands on a
//!   slot that is still in the `Computing` state. A fulfilment arriving
//!   after its promotion was quarantined (a stale write from a worker whose
//!   cell was already declared failed) finds `Pending` and is **discarded,
//!   not served** ([`SharedStore::discarded_fulfills`] counts them). Cached
//!   values are pure functions of their key, so discarding is always safe —
//!   a later caller simply re-promotes and recomputes.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Tracked-key bound as a multiple of the value capacity. Pending markers
/// are 16-byte bookkeeping; one-shot keys arrive in volume (per-scenario
/// operands mint fresh content ids) and must not lock genuinely shared keys
/// out of promotion — only the map itself needs a growth bound.
const TRACKED_PER_CAPACITY: usize = 16;

/// What the caller should do after a store lookup.
#[derive(Debug, Clone)]
pub enum StoreDecision<T> {
    /// The value is cached — use it.
    Hit(Arc<T>),
    /// This key is shared across workers: compute the value and hand it
    /// back via [`SharedStore::fulfill`] (or release the slot with
    /// [`SharedStore::abandon`] on failure).
    Compute,
    /// No usable entry (first sighting, in-flight key, or capacity
    /// overflow) — compute whatever subset is needed inline, store nothing.
    Skip,
}

enum Slot<T> {
    /// Seen once; not yet worth materialising.
    Pending,
    /// A worker is computing the shared value; tagged with the store
    /// generation at promotion time so quarantines can be audited.
    Computing(u64),
    /// Computed and shared.
    Ready(Arc<T>),
}

struct Inner<T> {
    slots: HashMap<u128, Slot<T>>,
    /// Keys promoted to `Computing`/`Ready` — what the capacity bounds.
    promoted: usize,
    /// Bumped on every quarantine; promotions are tagged with it.
    generation: u64,
}

impl<T> Inner<T> {
    /// Reverts every in-flight `Computing` slot to `Pending` (releasing its
    /// capacity) and bumps the generation. Returns how many were reverted.
    fn quarantine(&mut self) -> usize {
        let mut reverted = 0usize;
        for slot in self.slots.values_mut() {
            if matches!(slot, Slot::Computing(_)) {
                *slot = Slot::Pending;
                reverted += 1;
            }
        }
        self.promoted -= reverted;
        self.generation += 1;
        reverted
    }
}

/// One promote-on-second-request store (see the module docs).
pub struct SharedStore<T> {
    inner: Mutex<Inner<T>>,
    hits: AtomicUsize,
    promotions: AtomicUsize,
    skips: AtomicUsize,
    quarantined: AtomicUsize,
    discarded_fulfills: AtomicUsize,
    poison_recoveries: AtomicUsize,
}

impl<T> Default for SharedStore<T> {
    fn default() -> Self {
        Self {
            inner: Mutex::new(Inner {
                slots: HashMap::new(),
                promoted: 0,
                generation: 0,
            }),
            hits: AtomicUsize::new(0),
            promotions: AtomicUsize::new(0),
            skips: AtomicUsize::new(0),
            quarantined: AtomicUsize::new(0),
            discarded_fulfills: AtomicUsize::new(0),
            poison_recoveries: AtomicUsize::new(0),
        }
    }
}

impl<T> SharedStore<T> {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// The poison-recovering lock accessor. A panicked holder may have left
    /// bookkeeping half-done, so recovery conservatively quarantines every
    /// in-flight promotion — the affected keys fall back to `Pending` and
    /// simply re-promote later. Fulfilled (`Ready`) values are kept: they
    /// were complete before the crash (fulfilment is a single insert).
    fn guard(&self) -> MutexGuard<'_, Inner<T>> {
        let guard = match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => {
                self.inner.clear_poison();
                let mut guard = poisoned.into_inner();
                let reverted = guard.quarantine();
                self.quarantined.fetch_add(reverted, Ordering::Relaxed);
                self.poison_recoveries.fetch_add(1, Ordering::Relaxed);
                guard
            }
        };
        // Under audit, verify the quarantine invariant on every access: a
        // `Computing` slot tagged with an older generation would mean an
        // in-flight promotion survived a quarantine — exactly the stale
        // write the generation machinery exists to discard.
        #[cfg(feature = "audit")]
        for slot in guard.slots.values() {
            if let Slot::Computing(generation) = slot {
                assert_eq!(
                    *generation, guard.generation,
                    "store audit: a pre-quarantine promotion survived"
                );
            }
        }
        guard
    }

    /// Looks `key` up under a `capacity` bound on promoted values. `eager`
    /// callers know their key is shared by construction (the value is being
    /// computed either way, fulfilment just keeps it), so a first sighting
    /// promotes immediately instead of waiting for a second worker.
    pub fn lookup(&self, key: u128, capacity: usize, eager: bool) -> StoreDecision<T> {
        let mut inner = self.guard();
        let generation = inner.generation;
        match inner.slots.get(&key) {
            Some(Slot::Ready(value)) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                StoreDecision::Hit(Arc::clone(value))
            }
            Some(Slot::Pending) => {
                if inner.promoted < capacity {
                    self.promotions.fetch_add(1, Ordering::Relaxed);
                    inner.promoted += 1;
                    inner.slots.insert(key, Slot::Computing(generation));
                    StoreDecision::Compute
                } else {
                    self.skips.fetch_add(1, Ordering::Relaxed);
                    StoreDecision::Skip
                }
            }
            Some(Slot::Computing(_)) => {
                self.skips.fetch_add(1, Ordering::Relaxed);
                StoreDecision::Skip
            }
            None => {
                if eager && inner.promoted < capacity {
                    self.promotions.fetch_add(1, Ordering::Relaxed);
                    inner.promoted += 1;
                    inner.slots.insert(key, Slot::Computing(generation));
                    return StoreDecision::Compute;
                }
                self.skips.fetch_add(1, Ordering::Relaxed);
                if inner.slots.len() < capacity * TRACKED_PER_CAPACITY {
                    inner.slots.insert(key, Slot::Pending);
                }
                StoreDecision::Skip
            }
        }
    }

    /// Stores a computed value for a key previously answered with
    /// [`StoreDecision::Compute`]. The write only lands while the slot is
    /// still in flight: a fulfilment whose promotion was quarantined (or
    /// already superseded) is discarded, not served — see the module docs.
    pub fn fulfill(&self, key: u128, value: Arc<T>) {
        let mut inner = self.guard();
        if matches!(inner.slots.get(&key), Some(Slot::Computing(_))) {
            inner.slots.insert(key, Slot::Ready(value));
        } else {
            self.discarded_fulfills.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Releases an in-flight promotion whose computation failed: the key
    /// returns to `Pending`, so a later caller may promote it again instead
    /// of skipping forever.
    pub fn abandon(&self, key: u128) {
        let mut inner = self.guard();
        if matches!(inner.slots.get(&key), Some(Slot::Computing(_))) {
            inner.promoted -= 1;
            inner.slots.insert(key, Slot::Pending);
        }
    }

    /// Quarantines every in-flight promotion: reverts `Computing` slots to
    /// `Pending` (releasing their capacity) and bumps the store generation,
    /// so any stale fulfilment from the quarantined workers is discarded.
    /// Schedulers call this after catching a worker panic — the panicking
    /// worker may have been promoting any of the shared keys. Returns the
    /// number of promotions reverted.
    pub fn quarantine_in_flight(&self) -> usize {
        let mut inner = self.guard();
        let reverted = inner.quarantine();
        self.quarantined.fetch_add(reverted, Ordering::Relaxed);
        reverted
    }

    /// Number of tracked keys (pending and fulfilled).
    pub fn len(&self) -> usize {
        self.guard().slots.len()
    }

    /// `true` when nothing is tracked.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups served from a fulfilled entry.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that asked the caller to compute-and-fulfill.
    pub fn promotions(&self) -> usize {
        self.promotions.load(Ordering::Relaxed)
    }

    /// Lookups that found no usable entry.
    pub fn skips(&self) -> usize {
        self.skips.load(Ordering::Relaxed)
    }

    /// In-flight promotions reverted by quarantines (explicit or on poison
    /// recovery).
    pub fn quarantined(&self) -> usize {
        self.quarantined.load(Ordering::Relaxed)
    }

    /// Fulfilments discarded because their promotion was no longer in
    /// flight (quarantined or superseded).
    pub fn discarded_fulfills(&self) -> usize {
        self.discarded_fulfills.load(Ordering::Relaxed)
    }

    /// Times the lock accessor recovered from a poisoned mutex.
    pub fn poison_recoveries(&self) -> usize {
        self.poison_recoveries.load(Ordering::Relaxed)
    }

    /// The current store generation (bumped by every quarantine).
    pub fn generation(&self) -> u64 {
        self.guard().generation
    }

    /// The oldest generation tag among in-flight promotions, if any — an
    /// audit hook: a tag older than [`SharedStore::generation`] would mean
    /// a pre-quarantine promotion survived, which quarantine forbids.
    pub fn oldest_in_flight_generation(&self) -> Option<u64> {
        self.guard()
            .slots
            .values()
            .filter_map(|slot| match slot {
                Slot::Computing(generation) => Some(*generation),
                _ => None,
            })
            .min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn promote_on_second_then_hit_and_abandon_releases() {
        let store: SharedStore<Vec<u8>> = SharedStore::new();
        assert!(matches!(store.lookup(1, 4, false), StoreDecision::Skip));
        assert!(matches!(store.lookup(1, 4, false), StoreDecision::Compute));
        // In flight: racers skip; abandon returns the key to Pending.
        assert!(matches!(store.lookup(1, 4, false), StoreDecision::Skip));
        store.abandon(1);
        assert!(matches!(store.lookup(1, 4, false), StoreDecision::Compute));
        store.fulfill(1, Arc::new(vec![7]));
        assert!(matches!(store.lookup(1, 4, false), StoreDecision::Hit(_)));
        assert_eq!((store.hits(), store.promotions()), (1, 2));
    }

    #[test]
    fn eager_promotes_on_first_sighting_within_capacity() {
        let store: SharedStore<u32> = SharedStore::new();
        assert!(matches!(store.lookup(5, 1, true), StoreDecision::Compute));
        store.fulfill(5, Arc::new(9));
        // Capacity exhausted: further eager first-sightings degrade to the
        // pending protocol.
        assert!(matches!(store.lookup(6, 1, true), StoreDecision::Skip));
        assert!(matches!(store.lookup(5, 1, true), StoreDecision::Hit(_)));
    }

    #[test]
    fn quarantine_reverts_in_flight_promotions_and_discards_stale_fulfills() {
        let store: SharedStore<u32> = SharedStore::new();
        assert!(matches!(store.lookup(1, 4, true), StoreDecision::Compute));
        assert!(matches!(store.lookup(2, 4, true), StoreDecision::Compute));
        assert_eq!(store.generation(), 0);
        // A worker panicked mid-promotion: both in-flight slots revert.
        assert_eq!(store.quarantine_in_flight(), 2);
        assert_eq!((store.quarantined(), store.generation()), (2, 1));
        assert_eq!(store.oldest_in_flight_generation(), None);
        // The dead worker's write arrives late: discarded, not served.
        store.fulfill(1, Arc::new(13));
        assert_eq!(store.discarded_fulfills(), 1);
        assert!(
            matches!(store.lookup(1, 4, false), StoreDecision::Compute),
            "a quarantined key must re-promote, not serve the stale value"
        );
        // The re-promoted computation fulfils normally.
        store.fulfill(1, Arc::new(42));
        match store.lookup(1, 4, false) {
            StoreDecision::Hit(v) => assert_eq!(*v, 42),
            other => panic!("expected hit, got {other:?}"),
        }
    }

    #[test]
    fn quarantine_keeps_fulfilled_values_and_releases_capacity() {
        let store: SharedStore<u32> = SharedStore::new();
        assert!(matches!(store.lookup(1, 1, true), StoreDecision::Compute));
        store.fulfill(1, Arc::new(5));
        // Capacity 1 is used by the Ready value; nothing is in flight.
        assert_eq!(store.quarantine_in_flight(), 0);
        assert!(matches!(store.lookup(1, 1, false), StoreDecision::Hit(_)));
        // An in-flight promotion at full capacity: quarantining it releases
        // the capacity it held.
        let store: SharedStore<u32> = SharedStore::new();
        assert!(matches!(store.lookup(1, 1, true), StoreDecision::Compute));
        assert!(matches!(store.lookup(2, 1, true), StoreDecision::Skip));
        assert_eq!(store.quarantine_in_flight(), 1);
        assert!(matches!(store.lookup(2, 1, false), StoreDecision::Compute));
    }

    #[test]
    fn poisoned_lock_recovers_and_quarantines_in_flight() {
        let store: Arc<SharedStore<u32>> = Arc::new(SharedStore::new());
        assert!(matches!(store.lookup(1, 4, true), StoreDecision::Compute));
        // Poison the mutex: a worker dies while holding the lock.
        let poisoner = Arc::clone(&store);
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.inner.lock();
            panic!("worker dies holding the store lock");
        })
        .join();
        assert!(store.inner.is_poisoned());
        // Every accessor keeps working; the in-flight promotion from before
        // the crash was conservatively quarantined on recovery.
        assert_eq!(store.len(), 1);
        assert_eq!(store.poison_recoveries(), 1);
        assert_eq!(store.quarantined(), 1);
        assert!(!store.inner.is_poisoned(), "poison is cleared on recovery");
        assert!(matches!(store.lookup(1, 4, false), StoreDecision::Compute));
        store.fulfill(1, Arc::new(7));
        assert!(matches!(store.lookup(1, 4, false), StoreDecision::Hit(_)));
    }

    #[test]
    fn fulfill_without_promotion_is_discarded() {
        let store: SharedStore<u32> = SharedStore::new();
        // Never promoted: the write has no in-flight slot to land on.
        store.fulfill(9, Arc::new(1));
        assert_eq!(store.discarded_fulfills(), 1);
        assert!(matches!(store.lookup(9, 4, false), StoreDecision::Skip));
    }
}
