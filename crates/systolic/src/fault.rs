//! Stuck-at fault primitives.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Polarity of a permanent stuck-at fault.
///
/// The paper observes that stuck-at-1 faults in high-order accumulator bits
/// are the most damaging fault class in a systolicSNN.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StuckAt {
    /// The faulty bit always reads `0`.
    Zero,
    /// The faulty bit always reads `1`.
    One,
}

impl StuckAt {
    /// All polarity values, in the order the paper plots them.
    pub const ALL: [StuckAt; 2] = [StuckAt::Zero, StuckAt::One];
}

impl fmt::Display for StuckAt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StuckAt::Zero => write!(f, "sa0"),
            StuckAt::One => write!(f, "sa1"),
        }
    }
}

/// Coordinate of a processing element in the systolic grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PeCoord {
    /// Row index (0-based).
    pub row: usize,
    /// Column index (0-based).
    pub col: usize,
}

impl PeCoord {
    /// Creates a PE coordinate.
    pub fn new(row: usize, col: usize) -> Self {
        Self { row, col }
    }
}

impl fmt::Display for PeCoord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PE({}, {})", self.row, self.col)
    }
}

impl From<(usize, usize)> for PeCoord {
    fn from((row, col): (usize, usize)) -> Self {
        Self { row, col }
    }
}

/// A single permanent stuck-at fault in the accumulator output of one PE.
///
/// # Example
///
/// ```
/// use falvolt_systolic::{Fault, PeCoord, StuckAt};
///
/// let fault = Fault::new(PeCoord::new(3, 7), 15, StuckAt::One);
/// assert_eq!(fault.bit, 15);
/// assert_eq!(fault.to_string(), "sa1@bit15 in PE(3, 7)");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Fault {
    /// The faulty PE.
    pub pe: PeCoord,
    /// Bit position in the accumulator output word (0 = LSB).
    pub bit: u32,
    /// Stuck-at polarity.
    pub kind: StuckAt,
}

impl Fault {
    /// Creates a fault description.
    pub fn new(pe: PeCoord, bit: u32, kind: StuckAt) -> Self {
        Self { pe, bit, kind }
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@bit{} in {}", self.kind, self.bit, self.pe)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stuck_at_displays_like_paper_legend() {
        assert_eq!(StuckAt::Zero.to_string(), "sa0");
        assert_eq!(StuckAt::One.to_string(), "sa1");
        assert_eq!(StuckAt::ALL.len(), 2);
    }

    #[test]
    fn pe_coord_conversions_and_order() {
        let a: PeCoord = (1, 2).into();
        assert_eq!(a, PeCoord::new(1, 2));
        assert!(PeCoord::new(0, 5) < PeCoord::new(1, 0));
        assert_eq!(a.to_string(), "PE(1, 2)");
    }

    #[test]
    fn fault_description_is_complete() {
        let f = Fault::new(PeCoord::new(0, 0), 3, StuckAt::Zero);
        assert!(f.to_string().contains("sa0"));
        assert!(f.to_string().contains("bit3"));
    }
}
