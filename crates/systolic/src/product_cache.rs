//! Shared clean-product cache for scenario sweeps.
//!
//! A figure sweep pushes the *same* activation matrices (the im2col lowering
//! of one input batch) through the executor once per fault map. Faults only
//! corrupt output columns whose PE column holds a faulty PE; every other
//! column replays the identical maskless quantized accumulator chain in every
//! scenario. The [`ProductCache`] lets scenario workers share exactly that
//! work: the first worker to need a product's clean columns computes the full
//! clean (quantized, fault-free) product once, and every other worker copies
//! its clean columns instead of recomputing them.
//!
//! # Promote-on-second-request
//!
//! Mid-network activations *diverge* across scenarios (different corruption →
//! different spikes), so caching every product would waste a full clean
//! product on keys seen exactly once. The cache therefore promotes lazily:
//! the first sighting of a key only records interest ([`CacheDecision::Skip`]
//! — compute inline, don't store), and a second sighting proves the key is
//! shared across workers, so that caller computes the full product and
//! fulfils the entry ([`CacheDecision::Compute`]). Encoder products (shared
//! by construction) promote on the second scenario; per-scenario suffix
//! products never promote and cost one hash lookup each.
//!
//! Cached values are pure functions of the key's content (operands, shape,
//! accumulator format), so sharing cannot change results — sweeps remain
//! bit-identical to the per-clone baseline. Only one worker per key is ever
//! told to compute the shared value; workers racing it while it is in
//! flight compute their own column subsets inline.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Default bound on tracked keys (pending + fulfilled).
const DEFAULT_CAPACITY: usize = 512;

/// What the caller should do after a cache lookup.
#[derive(Debug, Clone)]
pub enum CacheDecision {
    /// The value is cached — use it.
    Hit(Arc<Vec<f32>>),
    /// The key was requested before: it is shared across workers. Compute
    /// the value and hand it back via [`ProductCache::fulfill`].
    Compute,
    /// First sighting of this key — compute whatever subset is needed
    /// inline and do not store anything.
    Skip,
}

enum Slot {
    /// Seen once; not yet worth materialising.
    Pending,
    /// A worker is computing the shared value; everyone else computes their
    /// own subset inline instead of duplicating the full product.
    Computing,
    /// Computed and shared.
    Ready(Arc<Vec<f32>>),
}

/// Shared clean-product store (see the module docs).
pub struct ProductCache {
    slots: Mutex<HashMap<u128, Slot>>,
    capacity: usize,
    hits: AtomicUsize,
    promotions: AtomicUsize,
    skips: AtomicUsize,
}

impl ProductCache {
    /// Creates an empty cache with the default capacity.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }

    /// Creates an empty cache tracking at most `capacity` keys.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            slots: Mutex::new(HashMap::new()),
            capacity,
            hits: AtomicUsize::new(0),
            promotions: AtomicUsize::new(0),
            skips: AtomicUsize::new(0),
        }
    }

    /// Looks the key up and reports what the caller should do. Exactly one
    /// caller per key is ever told to compute: the promotion transitions the
    /// slot to an in-flight state, so concurrent workers racing on the same
    /// key fall back to inline computation of their own subset instead of
    /// all duplicating the full shared product.
    pub fn lookup(&self, key: u128) -> CacheDecision {
        let mut slots = self.slots.lock().expect("product cache poisoned");
        match slots.get(&key) {
            Some(Slot::Ready(value)) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                CacheDecision::Hit(Arc::clone(value))
            }
            Some(Slot::Pending) => {
                self.promotions.fetch_add(1, Ordering::Relaxed);
                slots.insert(key, Slot::Computing);
                CacheDecision::Compute
            }
            Some(Slot::Computing) => {
                self.skips.fetch_add(1, Ordering::Relaxed);
                CacheDecision::Skip
            }
            None => {
                self.skips.fetch_add(1, Ordering::Relaxed);
                if slots.len() < self.capacity {
                    slots.insert(key, Slot::Pending);
                }
                CacheDecision::Skip
            }
        }
    }

    /// Stores a computed value for a key previously answered with
    /// [`CacheDecision::Compute`].
    pub fn fulfill(&self, key: u128, value: Arc<Vec<f32>>) {
        let mut slots = self.slots.lock().expect("product cache poisoned");
        slots.insert(key, Slot::Ready(value));
    }

    /// Number of tracked keys (pending and fulfilled).
    pub fn len(&self) -> usize {
        self.slots.lock().expect("product cache poisoned").len()
    }

    /// `true` when nothing has been tracked yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups served from a fulfilled entry.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that asked the caller to compute-and-fulfill.
    pub fn promotions(&self) -> usize {
        self.promotions.load(Ordering::Relaxed)
    }

    /// First-sighting lookups (computed inline, nothing stored).
    pub fn skips(&self) -> usize {
        self.skips.load(Ordering::Relaxed)
    }
}

impl Default for ProductCache {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for ProductCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ProductCache")
            .field("keys", &self.len())
            .field("hits", &self.hits())
            .field("promotions", &self.promotions())
            .field("skips", &self.skips())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn promotes_on_second_request_then_hits() {
        let cache = ProductCache::new();
        assert!(matches!(cache.lookup(7), CacheDecision::Skip));
        assert!(matches!(cache.lookup(7), CacheDecision::Compute));
        cache.fulfill(7, Arc::new(vec![1.0, 2.0]));
        match cache.lookup(7) {
            CacheDecision::Hit(v) => assert_eq!(v.as_slice(), &[1.0, 2.0]),
            other => panic!("expected hit, got {other:?}"),
        }
        assert_eq!((cache.skips(), cache.promotions(), cache.hits()), (1, 1, 1));
    }

    #[test]
    fn only_one_caller_is_told_to_compute() {
        let cache = ProductCache::new();
        assert!(matches!(cache.lookup(1), CacheDecision::Skip));
        assert!(matches!(cache.lookup(1), CacheDecision::Compute));
        // While the promoted worker computes, racing workers skip (inline
        // subset computation) instead of duplicating the full product.
        assert!(matches!(cache.lookup(1), CacheDecision::Skip));
        cache.fulfill(1, Arc::new(vec![4.0]));
        assert!(matches!(cache.lookup(1), CacheDecision::Hit(_)));
    }

    #[test]
    fn capacity_stops_tracking_new_keys() {
        let cache = ProductCache::with_capacity(1);
        assert!(matches!(cache.lookup(1), CacheDecision::Skip));
        // Key 2 cannot be tracked: it stays a Skip forever.
        assert!(matches!(cache.lookup(2), CacheDecision::Skip));
        assert!(matches!(cache.lookup(2), CacheDecision::Skip));
        assert_eq!(cache.len(), 1);
    }
}
