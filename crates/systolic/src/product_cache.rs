//! Shared clean-product / quantized-weight cache for scenario sweeps.
//!
//! A figure sweep pushes the *same* activation matrices (the im2col lowering
//! of one input batch) through the executor once per fault map. Faults only
//! corrupt output columns whose PE column holds a faulty PE; every other
//! column replays the identical maskless quantized accumulator chain in every
//! scenario. The [`ProductCache`] lets scenario workers share exactly that
//! work: the first worker to need a product's clean columns computes the full
//! clean (quantized, fault-free) product once, and every other worker copies
//! its clean columns instead of recomputing them.
//!
//! The cache also shares **quantized-weight tables** for binary (spike)
//! activations: with every nonzero exactly `1.0`, each accumulation step
//! contributes `quantize(1.0 * w[p, j]) == quantize(w[p, j])` — a pure
//! function of the weights and the accumulator format. One table serves
//! every scenario, every time step and every batch of a sweep, replacing a
//! multiply+round+clamp per event with a table read
//! ([`ProductCache::lookup_qweights`]).
//!
//! Both stores follow the **promote-on-second-request** protocol of
//! [`crate::SharedStore`]: mid-network activations diverge across scenarios
//! (different corruption → different spikes), so the first sighting of a key
//! only records interest and a second sighting proves the key is shared.
//! Encoder products promote on the second scenario; per-scenario suffix
//! products never promote and cost one hash lookup each. Quantized-weight
//! keys depend only on the (frozen) weights, so they promote on the second
//! product against the same weight matrix.
//!
//! Cached values are pure functions of the key's content (operands, shape,
//! accumulator format), so sharing cannot change results — sweeps remain
//! bit-identical to the per-clone baseline.

use crate::shared_store::SharedStore;
use std::fmt;
use std::sync::Arc;

/// Default bound on value-bearing (promoted) keys per store.
const DEFAULT_CAPACITY: usize = 512;

/// What the caller should do after a cache lookup — the shared-store
/// decision, defaulted to the clean-product value type.
pub use crate::shared_store::StoreDecision as CacheDecision;

/// Shared clean-product and quantized-weight store (see the module docs).
pub struct ProductCache {
    products: SharedStore<Vec<f32>>,
    qweights: SharedStore<Vec<i32>>,
    capacity: usize,
}

impl Default for ProductCache {
    fn default() -> Self {
        Self::new()
    }
}

impl ProductCache {
    /// Creates an empty cache with the default capacity.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }

    /// Creates an empty cache promoting at most `capacity` keys per store.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            products: SharedStore::new(),
            qweights: SharedStore::new(),
            capacity,
        }
    }

    /// Looks a clean-product key up and reports what the caller should do.
    /// Exactly one caller per key is ever told to compute: the promotion
    /// transitions the slot to an in-flight state, so concurrent workers
    /// racing on the same key fall back to inline computation of their own
    /// subset instead of all duplicating the full shared product.
    pub fn lookup(&self, key: u128) -> CacheDecision<Vec<f32>> {
        self.products.lookup(key, self.capacity, false)
    }

    /// Stores a computed clean product for a key previously answered with
    /// [`CacheDecision::Compute`]. Discarded (never served) if the
    /// promotion was quarantined in the meantime.
    pub fn fulfill(&self, key: u128, value: Arc<Vec<f32>>) {
        // Under audit, a key fulfilled twice (first write quarantined, a
        // later worker recomputed) must carry byte-identical content.
        #[cfg(feature = "audit")]
        falvolt_tensor::audit::check_fulfill(
            "product-cache/products",
            key,
            falvolt_tensor::audit::fingerprint(&value),
        );
        self.products.fulfill(key, value);
    }

    /// Releases an in-flight clean-product promotion whose computation
    /// failed (or was cancelled): the key may promote again later.
    pub fn abandon(&self, key: u128) {
        self.products.abandon(key);
    }

    /// Looks up a quantized-weight table (`quantize(w[p, j])` for every
    /// weight element, the per-event contribution of binary activations).
    /// Same promote-on-second-request protocol as [`ProductCache::lookup`].
    pub fn lookup_qweights(&self, key: u128) -> CacheDecision<Vec<i32>> {
        self.qweights.lookup(key, self.capacity, false)
    }

    /// Stores a quantized-weight table previously answered with
    /// [`CacheDecision::Compute`].
    pub fn fulfill_qweights(&self, key: u128, value: Arc<Vec<i32>>) {
        #[cfg(feature = "audit")]
        falvolt_tensor::audit::check_fulfill(
            "product-cache/qweights",
            key,
            falvolt_tensor::audit::fingerprint_bytes(value.iter().flat_map(|v| v.to_le_bytes())),
        );
        self.qweights.fulfill(key, value);
    }

    /// Number of tracked keys (pending and fulfilled, both stores).
    pub fn len(&self) -> usize {
        self.products.len() + self.qweights.len()
    }

    /// `true` when nothing has been tracked yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups served from a fulfilled entry.
    pub fn hits(&self) -> usize {
        self.products.hits() + self.qweights.hits()
    }

    /// Lookups that asked the caller to compute-and-fulfill.
    pub fn promotions(&self) -> usize {
        self.products.promotions() + self.qweights.promotions()
    }

    /// Lookups that found no usable entry (first sightings, in-flight keys,
    /// capacity overflow).
    pub fn skips(&self) -> usize {
        self.products.skips() + self.qweights.skips()
    }

    /// Quarantines every in-flight promotion in both stores (see
    /// [`SharedStore::quarantine_in_flight`]): a panicking scenario worker
    /// may have been promoting any shared key, so its writes must be
    /// discarded rather than served. Returns the promotions reverted.
    pub fn quarantine_in_flight(&self) -> usize {
        self.products.quarantine_in_flight() + self.qweights.quarantine_in_flight()
    }

    /// In-flight promotions reverted by quarantines, both stores.
    pub fn quarantined(&self) -> usize {
        self.products.quarantined() + self.qweights.quarantined()
    }

    /// Stale fulfilments discarded instead of served, both stores.
    pub fn discarded_fulfills(&self) -> usize {
        self.products.discarded_fulfills() + self.qweights.discarded_fulfills()
    }

    /// Poisoned-lock recoveries, both stores.
    pub fn poison_recoveries(&self) -> usize {
        self.products.poison_recoveries() + self.qweights.poison_recoveries()
    }
}

impl fmt::Debug for ProductCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ProductCache")
            .field("keys", &self.len())
            .field("hits", &self.hits())
            .field("promotions", &self.promotions())
            .field("skips", &self.skips())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn promotes_on_second_request_then_hits() {
        let cache = ProductCache::new();
        assert!(matches!(cache.lookup(7), CacheDecision::Skip));
        assert!(matches!(cache.lookup(7), CacheDecision::Compute));
        cache.fulfill(7, Arc::new(vec![1.0, 2.0]));
        match cache.lookup(7) {
            CacheDecision::Hit(v) => assert_eq!(v.as_slice(), &[1.0, 2.0]),
            other => panic!("expected hit, got {other:?}"),
        }
        assert_eq!((cache.skips(), cache.promotions(), cache.hits()), (1, 1, 1));
    }

    // Every test fulfils its own key range: the audit registry (under
    // `--features audit`) is process-global, so two tests fulfilling the
    // same key with different bytes would trip the purity assertion.
    #[test]
    fn only_one_caller_is_told_to_compute() {
        let cache = ProductCache::new();
        assert!(matches!(cache.lookup(21), CacheDecision::Skip));
        assert!(matches!(cache.lookup(21), CacheDecision::Compute));
        // While the promoted worker computes, racing workers skip (inline
        // subset computation) instead of duplicating the full product.
        assert!(matches!(cache.lookup(21), CacheDecision::Skip));
        cache.fulfill(21, Arc::new(vec![4.0]));
        assert!(matches!(cache.lookup(21), CacheDecision::Hit(_)));
    }

    #[test]
    fn value_capacity_bounds_promotions_not_pending_markers() {
        let cache = ProductCache::with_capacity(1);
        // Key 31 takes the single value slot.
        assert!(matches!(cache.lookup(31), CacheDecision::Skip));
        assert!(matches!(cache.lookup(31), CacheDecision::Compute));
        cache.fulfill(31, Arc::new(vec![2.0]));
        // Key 32 is tracked (cheap Pending marker) but can never promote
        // while the value capacity is used up — and key 31 still hits.
        assert!(matches!(cache.lookup(32), CacheDecision::Skip));
        assert!(matches!(cache.lookup(32), CacheDecision::Skip));
        assert!(matches!(cache.lookup(31), CacheDecision::Hit(_)));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn quarantine_spans_both_stores_and_discards_stale_fulfills() {
        let cache = ProductCache::new();
        let _ = cache.lookup(41);
        assert!(matches!(cache.lookup(41), CacheDecision::Compute));
        let _ = cache.lookup_qweights(42);
        assert!(matches!(cache.lookup_qweights(42), CacheDecision::Compute));
        assert_eq!(cache.quarantine_in_flight(), 2);
        assert_eq!(cache.quarantined(), 2);
        // Stale writes from the quarantined workers are discarded.
        cache.fulfill(41, Arc::new(vec![1.0]));
        cache.fulfill_qweights(42, Arc::new(vec![5]));
        assert_eq!(cache.discarded_fulfills(), 2);
        assert!(matches!(cache.lookup(41), CacheDecision::Compute));
    }

    #[test]
    fn abandon_releases_a_clean_product_promotion() {
        let cache = ProductCache::with_capacity(1);
        let _ = cache.lookup(4);
        assert!(matches!(cache.lookup(4), CacheDecision::Compute));
        cache.abandon(4);
        assert!(matches!(cache.lookup(4), CacheDecision::Compute));
    }

    #[test]
    fn qweight_store_is_independent_of_the_product_store() {
        let cache = ProductCache::new();
        // Same key, different stores: promotions do not interfere.
        assert!(matches!(cache.lookup(9), CacheDecision::Skip));
        assert!(matches!(cache.lookup_qweights(9), CacheDecision::Skip));
        assert!(matches!(cache.lookup_qweights(9), CacheDecision::Compute));
        cache.fulfill_qweights(9, Arc::new(vec![3, -4]));
        match cache.lookup_qweights(9) {
            CacheDecision::Hit(v) => assert_eq!(v.as_slice(), &[3, -4]),
            other => panic!("expected hit, got {other:?}"),
        }
        // The product store still sees its own promotion protocol.
        assert!(matches!(cache.lookup(9), CacheDecision::Compute));
    }
}
