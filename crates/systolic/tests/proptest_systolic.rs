//! Property-based tests for the systolic-array fault model.

use falvolt_systolic::executor::BypassPolicy;
use falvolt_systolic::{
    FaultMap, FoldPlan, StuckAt, SystolicConfig, SystolicExecutor, WeightMapping,
};
use falvolt_tensor::Tensor;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn small_grid() -> impl Strategy<Value = SystolicConfig> {
    (2usize..8, 2usize..8).prop_map(|(r, c)| SystolicConfig::new(r, c).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn fault_rate_matches_requested_pe_count(config in small_grid(), seed in 0u64..1000, frac in 0.0f64..1.0) {
        let faulty = (frac * config.pe_count() as f64) as usize;
        let mut rng = StdRng::seed_from_u64(seed);
        let map = FaultMap::random_faulty_pes(&config, faulty, 0, StuckAt::Zero, &mut rng).unwrap();
        prop_assert_eq!(map.faulty_pe_count(), faulty);
        prop_assert!((map.fault_rate() - config.fault_rate_for(faulty)).abs() < 1e-12);
    }

    #[test]
    fn prune_mask_zero_fraction_equals_pruned_indices(
        config in small_grid(),
        seed in 0u64..1000,
        out_dim in 1usize..20,
        in_dim in 1usize..20,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let faulty = config.pe_count() / 3;
        let map = FaultMap::random_faulty_pes(&config, faulty, 15, StuckAt::One, &mut rng).unwrap();
        let mapping = WeightMapping::new(&config);
        let mask = mapping.prune_mask(out_dim, in_dim, &map);
        let zeros = mask.data().iter().filter(|&&v| v == 0.0).count();
        prop_assert_eq!(zeros, mapping.pruned_indices(out_dim, in_dim, &map).len());
    }

    #[test]
    fn composed_and_cached_executors_match_replay_bit_for_bit(
        config in small_grid(),
        seed in 0u64..1000,
        density_pct in 0usize..60,
        bypass_choice in 0usize..2,
    ) {
        // Random grids, fault maps, spike densities and bypass policies:
        // the composed event walk and the sweep-shared clean-product cache
        // must reproduce the full k-step replay exactly — this is the
        // "composed vs replayed mask chains" leg of the Fig 5 bit-identity
        // guarantee, at the executor level where the chains live.
        use falvolt_systolic::ProductCache;
        use std::sync::Arc;

        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(31).wrapping_add(5));
        let faulty = 1 + config.pe_count() / 4;
        let map = FaultMap::random_msb_faults(&config, faulty, &mut rng).unwrap();
        prop_assert!(!map.is_empty());
        let policy = [BypassPolicy::None, BypassPolicy::SkipFaulty][bypass_choice];

        // k wraps the grid rows a few times so folded PEs repeat masks; m is
        // large enough for the executor's hash gate to consult the cache.
        let k = config.rows() * 3 + 1;
        let n = config.cols() * 2 + 1;
        let a = Tensor::from_fn(&[50, k], |i| {
            let r = (i * 2654435761 + seed as usize) % 100;
            if r < density_pct { 1.0 } else if r == 99 { -0.5 } else { 0.0 }
        });
        let b = falvolt_tensor::init::uniform(&[k, n], -0.4, 0.4, &mut rng);

        let mut replay = SystolicExecutor::with_bypass(config, map.clone(), policy);
        replay.set_composed_mask_chains(false);
        let reference = replay.matmul(&a, &b).unwrap();

        let composed = SystolicExecutor::with_bypass(config, map.clone(), policy);
        let composed_out = composed.matmul(&a, &b).unwrap();
        prop_assert_eq!(composed_out.data(), reference.data());

        let mut cached = SystolicExecutor::with_bypass(config, map, policy);
        cached.set_product_cache(Some(Arc::new(ProductCache::new())));
        for _ in 0..3 {
            let cached_out = cached.matmul(&a, &b).unwrap();
            prop_assert_eq!(cached_out.data(), reference.data());
        }
    }

    #[test]
    fn matmul_scenarios_is_bit_identical_to_per_map_products(
        config in small_grid(),
        seed in 0u64..1000,
        density_pct in 0usize..60,
        bypass_choice in 0usize..2,
        scenario_count in 2usize..6,
        indexed_choice in 0usize..2,
    ) {
        // The multi-map batched product walks each row's event stream once
        // for every fault map; it must agree bit-for-bit with installing
        // each map on its own executor — over random grids, map mixes
        // (including the empty map), densities, bypass policies, and with
        // or without a CSR spike index on the activations.
        use std::sync::Arc;

        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(97).wrapping_add(3));
        let policy = [BypassPolicy::None, BypassPolicy::SkipFaulty][bypass_choice];
        let indexed = indexed_choice == 1;
        let mut maps = vec![FaultMap::new(config)];
        for extra in 0..scenario_count - 1 {
            let faulty = 1 + (extra + config.pe_count() / 4) % config.pe_count();
            maps.push(FaultMap::random_msb_faults(&config, faulty, &mut rng).unwrap());
        }

        let k = config.rows() * 3 + 1;
        let n = config.cols() * 2 + 1;
        // Binary spikes when an index rides along (indexes certify
        // binariness); mixed-magnitude activations otherwise.
        let a = Tensor::from_fn(&[23, k], |i| {
            let r = (i * 2654435761 + seed as usize) % 100;
            if r < density_pct {
                1.0
            } else if r == 99 && !indexed {
                -0.5
            } else {
                0.0
            }
        });
        let a = if indexed {
            let index = falvolt_tensor::SpikeIndex::from_dense(a.data(), k).unwrap();
            a.with_spike_index(Arc::new(index))
        } else {
            a
        };
        let b = falvolt_tensor::init::uniform(&[k, n], -0.4, 0.4, &mut rng);

        let batch = SystolicExecutor::with_bypass(config, FaultMap::new(config), policy);
        let outputs = batch.matmul_scenarios(&a, &b, &maps).unwrap();
        prop_assert_eq!(outputs.len(), maps.len());
        for (s, map) in maps.iter().enumerate() {
            let single = SystolicExecutor::with_bypass(config, map.clone(), policy);
            let reference = single.matmul(&a, &b).unwrap();
            prop_assert_eq!(
                outputs[s].data(),
                reference.data(),
                "scenario {} diverged", s
            );
        }
    }

    #[test]
    fn empty_fault_map_executor_is_close_to_float(config in small_grid(), seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let k = config.rows() + 1;
        let n = config.cols() + 2;
        let a = falvolt_tensor::init::uniform(&[3, k], 0.0, 1.0, &mut rng);
        let b = falvolt_tensor::init::uniform(&[k, n], -0.5, 0.5, &mut rng);
        let executor = SystolicExecutor::new(config, FaultMap::new(config));
        let sys = executor.matmul(&a, &b).unwrap();
        let float = executor.clean_matmul(&a, &b).unwrap();
        let tolerance = k as f32 / 256.0 + 1e-3;
        for (x, y) in sys.data().iter().zip(float.data()) {
            prop_assert!((x - y).abs() <= tolerance, "{} vs {}", x, y);
        }
    }

    #[test]
    fn fault_free_executor_folds_to_the_clean_kernel(config in small_grid(), seed in 0u64..1000) {
        // With an empty fault map the executor takes the clean blocked-kernel
        // fast path, so the result is *identical* to clean_matmul, not merely
        // within quantization tolerance.
        let mut rng = StdRng::seed_from_u64(seed);
        let k = 2 * config.rows() + 1;
        let n = config.cols() + 3;
        let a = falvolt_tensor::init::uniform(&[4, k], 0.0, 1.0, &mut rng);
        let b = falvolt_tensor::init::uniform(&[k, n], -0.5, 0.5, &mut rng);
        let executor = SystolicExecutor::new(config, FaultMap::new(config));
        let sys = executor.matmul(&a, &b).unwrap();
        let float = executor.clean_matmul(&a, &b).unwrap();
        prop_assert_eq!(sys.data(), float.data());
    }

    #[test]
    fn foldplan_clean_columns_stay_within_quantization(config in small_grid(), seed in 0u64..500) {
        // Columns the FoldPlan reports as clean still replay the quantized
        // accumulator chain under a faulty map, so they sit within the
        // k-step quantization envelope of the float product.
        let mut rng = StdRng::seed_from_u64(seed);
        let map = FaultMap::random_faulty_pes(&config, 1, 15, StuckAt::One, &mut rng).unwrap();
        let k = config.rows() + 2;
        let n = config.cols() + 1;
        let plan = FoldPlan::new(&config, &map, k);
        prop_assert!(plan.any_fault());
        let a = falvolt_tensor::init::uniform(&[3, k], 0.0, 1.0, &mut rng);
        let b = falvolt_tensor::init::uniform(&[k, n], -0.5, 0.5, &mut rng);
        let executor = SystolicExecutor::new(config, map);
        let sys = executor.matmul(&a, &b).unwrap();
        let float = executor.clean_matmul(&a, &b).unwrap();
        let tolerance = k as f32 / 256.0 + 1e-3;
        for j in (0..n).filter(|&j| plan.column_is_clean(j)) {
            for i in 0..3 {
                let diff = (sys.get(&[i, j]) - float.get(&[i, j])).abs();
                prop_assert!(diff <= tolerance, "clean column {} diff {}", j, diff);
            }
        }
    }

    #[test]
    fn bypass_error_is_bounded_by_skipped_weight_mass(config in small_grid(), seed in 0u64..1000) {
        // With SkipFaulty bypass, the deviation from the clean product is at
        // most the sum of |weights| mapped to faulty PEs (per output), never
        // the catastrophic MSB corruption.
        let mut rng = StdRng::seed_from_u64(seed);
        let faulty = (config.pe_count() / 4).max(1);
        let map = FaultMap::random_faulty_pes(&config, faulty, 15, StuckAt::One, &mut rng).unwrap();
        let k = config.rows();
        let n = config.cols();
        let a = Tensor::ones(&[2, k]);
        let b = falvolt_tensor::init::uniform(&[k, n], -0.5, 0.5, &mut rng);
        let executor = SystolicExecutor::with_bypass(config, map.clone(), BypassPolicy::SkipFaulty);
        let out = executor.matmul(&a, &b).unwrap();
        let clean = executor.clean_matmul(&a, &b).unwrap();
        let mapping = WeightMapping::new(&config);
        for j in 0..n {
            let skipped_mass: f32 = (0..k)
                .filter(|&p| map.is_faulty(mapping.pe_for(j, p)))
                .map(|p| b.get(&[p, j]).abs())
                .sum();
            for i in 0..2 {
                let diff = (out.get(&[i, j]) - clean.get(&[i, j])).abs();
                prop_assert!(diff <= skipped_mass + k as f32 / 256.0 + 1e-3);
            }
        }
    }

    #[test]
    fn msb_stuck_at_one_never_underestimates_lsb_damage(seed in 0u64..500) {
        // Aggregate property behind Figure 5a: for the same fault location
        // pattern, an MSB stuck-at-1 fault perturbs the output at least as
        // much as the same fault in the LSB.
        let config = SystolicConfig::new(4, 4).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let pes = FaultMap::random_faulty_pes(&config, 2, 0, StuckAt::One, &mut rng).unwrap();
        let faults_lsb = pes.faults().to_vec();
        let faults_msb: Vec<_> = faults_lsb
            .iter()
            .map(|f| falvolt_systolic::Fault::new(f.pe, config.accumulator_format().msb(), f.kind))
            .collect();
        let map_lsb = FaultMap::from_faults(config, faults_lsb).unwrap();
        let map_msb = FaultMap::from_faults(config, faults_msb).unwrap();

        let a = Tensor::ones(&[2, 4]);
        let b = falvolt_tensor::init::uniform(&[4, 4], 0.0, 0.5, &mut rng);
        let clean = falvolt_tensor::ops::matmul(&a, &b).unwrap();
        let lsb_out = SystolicExecutor::new(config, map_lsb).matmul(&a, &b).unwrap();
        let msb_out = SystolicExecutor::new(config, map_msb).matmul(&a, &b).unwrap();
        let lsb_err: f32 = lsb_out
            .data()
            .iter()
            .zip(clean.data())
            .map(|(x, y)| (x - y).abs())
            .sum();
        let msb_err: f32 = msb_out
            .data()
            .iter()
            .zip(clean.data())
            .map(|(x, y)| (x - y).abs())
            .sum();
        prop_assert!(msb_err + 1e-3 >= lsb_err, "msb {} < lsb {}", msb_err, lsb_err);
    }
}

// ---------------------------------------------------------------------------
// SIMD dispatch properties: the executor's quantized accumulator chains are
// integer add/clamp/mask sequences whose per-column order the lane engines
// never change, so every forced ISA must reproduce the forced-scalar output
// *bit for bit* — single-map and batched, with and without bypass, odd
// column counts included. The override is process-global; each test holds
// the shared lock for its whole body.
// ---------------------------------------------------------------------------

fn hashed_act(i: usize, salt: u64, density_pct: usize) -> f32 {
    let r = (i as u64).wrapping_mul(2_654_435_761).wrapping_add(salt) % 100;
    if (r as usize) < density_pct {
        ((r % 7) as f32 - 3.0) * 0.4
    } else {
        0.0
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn faulty_products_are_bit_identical_on_every_isa(
        config in small_grid(),
        m in 1usize..5,
        k in 1usize..12,
        n in 1usize..30,
        density_pct in 0usize..80,
        bypass_choice in 0usize..2,
        seed in 0u64..1000,
    ) {
        use falvolt_tensor::simd;
        let _lock = simd::test_override_lock();
        let mut rng = StdRng::seed_from_u64(seed);
        let faulty = 1 + config.pe_count() / 4;
        let map = FaultMap::random_faulty_pes(&config, faulty, 9, StuckAt::One, &mut rng).unwrap();
        let bypass = if bypass_choice == 0 {
            BypassPolicy::None
        } else {
            BypassPolicy::SkipFaulty
        };
        let executor = SystolicExecutor::with_bypass(config, map, bypass);
        let a = Tensor::from_fn(&[m, k], |i| hashed_act(i, seed, density_pct));
        let b = Tensor::from_fn(&[k, n], |i| ((i % 11) as f32 - 5.0) * 0.21);
        let scalar = {
            let _g = simd::force(Some(simd::Isa::Scalar));
            executor.matmul(&a, &b).unwrap()
        };
        for isa in simd::available() {
            let _g = simd::force(Some(isa));
            let out = executor.matmul(&a, &b).unwrap();
            prop_assert_eq!(out.data(), scalar.data(), "isa {}", isa);
        }
    }

    #[test]
    fn batched_scenarios_are_bit_identical_on_every_isa(
        config in small_grid(),
        m in 1usize..4,
        k in 1usize..10,
        n in 1usize..30,
        density_pct in 0usize..80,
        scenarios in 1usize..5,
        seed in 0u64..1000,
    ) {
        use falvolt_tensor::simd;
        let _lock = simd::test_override_lock();
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(97).wrapping_add(3));
        let maps: Vec<FaultMap> = (0..scenarios)
            .map(|_| {
                let faulty = 1 + config.pe_count() / 5;
                FaultMap::random_faulty_pes(&config, faulty, 12, StuckAt::Zero, &mut rng).unwrap()
            })
            .collect();
        let executor = SystolicExecutor::new(config, FaultMap::new(config));
        let a = Tensor::from_fn(&[m, k], |i| hashed_act(i, seed, density_pct));
        let b = Tensor::from_fn(&[k, n], |i| ((i % 13) as f32 - 6.0) * 0.17);
        let scalar = {
            let _g = simd::force(Some(simd::Isa::Scalar));
            executor.matmul_scenarios(&a, &b, &maps).unwrap()
        };
        for isa in simd::available() {
            let _g = simd::force(Some(isa));
            // The batched walk must agree with the single-map path on this
            // ISA *and* with the scalar batched walk bit for bit.
            let batched = executor.matmul_scenarios(&a, &b, &maps).unwrap();
            prop_assert_eq!(batched.len(), maps.len());
            for (s, out) in batched.iter().enumerate() {
                prop_assert_eq!(out.data(), scalar[s].data(), "isa {} scenario {}", isa, s);
                let mut single = SystolicExecutor::new(config, maps[s].clone());
                single.set_composed_mask_chains(true);
                let direct = single.matmul(&a, &b).unwrap();
                if maps[s].is_empty() {
                    continue; // fault-free lanes take the float fast path
                }
                prop_assert_eq!(out.data(), direct.data(), "isa {} single {}", isa, s);
            }
        }
    }

    #[test]
    fn scenario_view_rows_match_materialised_tensors(
        config in small_grid(),
        m in 1usize..4,
        k in 1usize..8,
        n in 1usize..20,
        scenarios in 1usize..5,
        seed in 0u64..1000,
    ) {
        use falvolt_tensor::MatmulHint;
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(41).wrapping_add(7));
        // Mix fault-free (shared fast-path lane) and faulty (interleaved
        // lane) scenarios so both arms of the view are exercised.
        let maps: Vec<FaultMap> = (0..scenarios)
            .map(|s| {
                if s % 2 == 0 {
                    FaultMap::new(config)
                } else {
                    let faulty = 1 + config.pe_count() / 5;
                    FaultMap::random_faulty_pes(&config, faulty, 10, StuckAt::One, &mut rng)
                        .unwrap()
                }
            })
            .collect();
        let executor = SystolicExecutor::new(config, FaultMap::new(config));
        let a = Tensor::from_fn(&[m, k], |i| hashed_act(i, seed, 50));
        let b = Tensor::from_fn(&[k, n], |i| ((i % 9) as f32 - 4.0) * 0.3);
        let view = executor
            .matmul_scenarios_view(&a, &b, &maps, MatmulHint::Auto)
            .unwrap();
        prop_assert_eq!(view.scenarios(), maps.len());
        prop_assert_eq!(view.dims(), (m, n));
        let eager = executor.matmul_scenarios(&a, &b, &maps).unwrap();
        for s in 0..maps.len() {
            let materialised = view.tensor(s).unwrap();
            prop_assert_eq!(materialised.shape(), &[m, n]);
            for i in 0..m {
                prop_assert_eq!(view.row(s, i), &materialised.data()[i * n..(i + 1) * n]);
            }
        }
        // And the eager wrapper is exactly the per-scenario gather.
        let gathered = view.into_tensors().unwrap();
        for (s, t) in gathered.iter().enumerate() {
            prop_assert_eq!(t.data(), eager[s].data(), "scenario {}", s);
        }
    }
}
