//! Offline stand-in for the subset of `criterion` this workspace uses.
//!
//! Implements wall-clock benchmarking with warm-up, a fixed sample count and
//! a measurement-time budget, printing `name  time: [min mean max]` lines in
//! the spirit of criterion's console output. Statistical analysis (outlier
//! detection, regressions) is out of scope — the harness exists so the
//! `benches/` targets build and produce honest timings offline.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for a parameterised benchmark, mirroring
/// `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id made of the parameter value alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Per-iteration timer handed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Bencher {
    /// Times `routine`, collecting up to `sample_size` samples within the
    /// measurement-time budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: run without recording until the warm-up budget is spent.
        let warm_up_start = Instant::now();
        loop {
            black_box(routine());
            if warm_up_start.elapsed() >= self.warm_up_time {
                break;
            }
        }
        let measurement_start = Instant::now();
        for _ in 0..self.sample_size.max(1) {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
            if measurement_start.elapsed() >= self.measurement_time {
                break;
            }
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<50} time: [no samples]");
            return;
        }
        let min = self.samples.iter().min().copied().unwrap_or_default();
        let max = self.samples.iter().max().copied().unwrap_or_default();
        let mean = self.samples.iter().sum::<Duration>() / self.samples.len() as u32;
        println!(
            "{name:<50} time: [{} {} {}]  ({} samples)",
            fmt_duration(min),
            fmt_duration(mean),
            fmt_duration(max),
            self.samples.len()
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Benchmark manager, mirroring `criterion::Criterion`.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Sets the number of samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Sets the measurement-time budget per benchmark.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up budget per benchmark.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    fn bencher(&self) -> Bencher {
        Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
        }
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut bencher = self.bencher();
        f(&mut bencher);
        bencher.report(id);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            sample_size: None,
            measurement_time: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    sample_size: Option<usize>,
    measurement_time: Option<Duration>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Overrides the measurement-time budget for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = Some(d);
        self
    }

    fn bencher(&self) -> Bencher {
        let mut bencher = self.criterion.bencher();
        if let Some(n) = self.sample_size {
            bencher.sample_size = n;
        }
        if let Some(d) = self.measurement_time {
            bencher.measurement_time = d;
        }
        bencher
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let mut bencher = self.bencher();
        f(&mut bencher);
        bencher.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Runs a parameterised benchmark within the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = self.bencher();
        f(&mut bencher, input);
        bencher.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Ends the group (kept for API compatibility; reporting is incremental).
    pub fn finish(&mut self) {}
}

/// Declares a group of benchmark functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples_and_reports() {
        let mut c = Criterion::default()
            .sample_size(5)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(50));
        c.bench_function("smoke/add", |b| b.iter(|| black_box(1u64 + 1)));
        let mut group = c.benchmark_group("smoke");
        group
            .sample_size(3)
            .measurement_time(Duration::from_millis(20));
        group.bench_function("mul", |b| b.iter(|| black_box(3u64 * 7)));
        group.bench_with_input(BenchmarkId::from_parameter(4), &4u64, |b, &x| {
            b.iter(|| black_box(x * x))
        });
        group.finish();
    }

    #[test]
    fn duration_formatting_scales() {
        assert!(fmt_duration(Duration::from_nanos(10)).contains("ns"));
        assert!(fmt_duration(Duration::from_micros(10)).contains("µs"));
        assert!(fmt_duration(Duration::from_millis(10)).contains("ms"));
        assert!(fmt_duration(Duration::from_secs(10)).contains("s"));
    }
}
