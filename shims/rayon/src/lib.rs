//! Offline stand-in for the subset of `rayon` this workspace uses.
//!
//! The build environment has no crates.io access, so data parallelism is
//! provided by a small work-stealing-free scheduler on `std::thread::scope`:
//! a locked work queue of items, one worker per available core, results
//! written back by original index so ordering semantics match rayon's
//! indexed parallel iterators.
//!
//! Supported surface (what the workspace's kernels and sweeps call):
//!
//! * `(a..b).into_par_iter().map(f).collect::<Vec<_>>()`
//! * `vec.into_par_iter().map(f).collect::<Vec<_>>()` / `.for_each(f)`
//! * `slice.par_chunks_mut(n).enumerate().for_each(f)`
//! * [`current_num_threads`], [`join`]

#![forbid(unsafe_code)]

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Process-wide worker-count override (0 = none). A shim extension beyond
/// the real rayon API: tests that need to compare worker counts set this
/// instead of mutating `RAYON_NUM_THREADS`, because `std::env::set_var`
/// races with the `getenv` calls every parallel operation makes.
static THREAD_COUNT_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Forces [`current_num_threads`] to report `n` (shim-only test hook;
/// `0` clears the override). Data-race-free, unlike env mutation.
pub fn set_thread_count_override(n: usize) {
    THREAD_COUNT_OVERRIDE.store(n, Ordering::SeqCst);
}

/// Number of worker threads used for parallel execution.
///
/// Honours the test override, then `RAYON_NUM_THREADS` (like the real
/// rayon), and falls back to the machine's available parallelism.
pub fn current_num_threads() -> usize {
    let forced = THREAD_COUNT_OVERRIDE.load(Ordering::SeqCst);
    if forced > 0 {
        return forced;
    }
    if let Ok(value) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = value.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        return (a(), b());
    }
    std::thread::scope(|scope| {
        let hb = scope.spawn(b);
        let ra = a();
        (ra, hb.join().expect("rayon-shim: join worker panicked"))
    })
}

/// Core executor: applies `f` to every `(index, item)` pair across worker
/// threads and returns results in input order.
fn run_indexed<I, R, F>(items: Vec<I>, f: F) -> Vec<R>
where
    I: Send,
    R: Send,
    F: Fn(usize, I) -> R + Sync,
{
    let n = items.len();
    let workers = current_num_threads().min(n);
    if workers <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, x)| f(i, x))
            .collect();
    }
    let queue = Mutex::new(items.into_iter().enumerate());
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let next = queue
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .next();
                match next {
                    Some((i, item)) => {
                        let r = f(i, item);
                        *results[i]
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(r);
                    }
                    None => break,
                }
            });
        }
    });
    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("rayon-shim: slot poisoned")
                .expect("rayon-shim: missing result")
        })
        .collect()
}

/// An indexed parallel iterator over owned items.
pub struct ParIter<I> {
    items: Vec<I>,
}

impl<I: Send> ParIter<I> {
    /// Maps every item through `f` in parallel.
    pub fn map<R, F>(self, f: F) -> ParMap<I, F>
    where
        R: Send,
        F: Fn(I) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Pairs every item with its index, preserving order semantics.
    pub fn enumerate(self) -> ParIter<(usize, I)> {
        ParIter {
            items: self.items.into_iter().enumerate().collect(),
        }
    }

    /// Runs `f` on every item in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(I) + Sync,
    {
        run_indexed(self.items, |_, x| f(x));
    }
}

/// The result of [`ParIter::map`]; consumed by [`ParMap::collect`] or
/// [`ParMap::for_each`].
pub struct ParMap<I, F> {
    items: Vec<I>,
    f: F,
}

impl<I, F> ParMap<I, F>
where
    I: Send,
{
    /// Executes the map in parallel and collects results in input order.
    pub fn collect<R, C>(self) -> C
    where
        R: Send,
        F: Fn(I) -> R + Sync,
        C: FromIterator<R>,
    {
        let f = self.f;
        run_indexed(self.items, |_, x| f(x)).into_iter().collect()
    }

    /// Executes the map in parallel, discarding results.
    pub fn for_each<R, G>(self, g: G)
    where
        R: Send,
        F: Fn(I) -> R + Sync,
        G: Fn(R) + Sync,
    {
        let f = self.f;
        run_indexed(self.items, |_, x| g(f(x)));
    }
}

/// Conversion into a parallel iterator (`rayon::iter::IntoParallelIterator`).
pub trait IntoParallelIterator {
    /// Item type produced by the iterator.
    type Item: Send;

    /// Converts `self` into an indexed parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;

    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;

    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

/// Parallel mutable chunking of slices (`rayon::slice::ParallelSliceMut`).
pub trait ParallelSliceMut<T: Send> {
    /// Splits the slice into mutable chunks of at most `chunk_size` elements
    /// that can be processed in parallel.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        assert!(
            chunk_size > 0,
            "par_chunks_mut: chunk size must be non-zero"
        );
        ParChunksMut {
            chunks: self.chunks_mut(chunk_size).collect(),
        }
    }
}

/// Parallel iterator over mutable slice chunks.
pub struct ParChunksMut<'a, T> {
    chunks: Vec<&'a mut [T]>,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Pairs every chunk with its chunk index.
    pub fn enumerate(self) -> ParEnumeratedChunks<'a, T> {
        ParEnumeratedChunks {
            chunks: self.chunks,
        }
    }

    /// Runs `f` on every chunk in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut [T]) + Sync,
    {
        run_indexed(self.chunks, |_, chunk| f(chunk));
    }
}

/// Enumerated variant of [`ParChunksMut`].
pub struct ParEnumeratedChunks<'a, T> {
    chunks: Vec<&'a mut [T]>,
}

impl<'a, T: Send> ParEnumeratedChunks<'a, T> {
    /// Runs `f` on every `(chunk_index, chunk)` pair in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut [T])) + Sync,
    {
        run_indexed(self.chunks, |i, chunk| f((i, chunk)));
    }
}

/// One-stop imports, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let squares: Vec<usize> = (0..1000).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares.len(), 1000);
        for (i, &sq) in squares.iter().enumerate() {
            assert_eq!(sq, i * i);
        }
    }

    #[test]
    fn par_chunks_mut_touches_every_element_once() {
        let mut data = vec![0u64; 10_000];
        data.par_chunks_mut(97).enumerate().for_each(|(ci, chunk)| {
            for (j, v) in chunk.iter_mut().enumerate() {
                *v = (ci * 97 + j) as u64 + 1;
            }
        });
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v, i as u64 + 1);
        }
    }

    #[test]
    fn vec_into_par_iter_for_each_runs_all() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let count = AtomicUsize::new(0);
        let items: Vec<usize> = (0..500).collect();
        items.into_par_iter().for_each(|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 500);
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = super::join(|| 21 * 2, || "ok");
        assert_eq!(a, 42);
        assert_eq!(b, "ok");
    }
}
