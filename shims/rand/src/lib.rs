//! Offline stand-in for the subset of the `rand` crate this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a small, deterministic PRNG behind the same module paths and trait names
//! the real crate exposes: [`Rng`], [`SeedableRng`], [`rngs::StdRng`],
//! [`seq::SliceRandom`] and [`distributions::Uniform`]. The generator is
//! xoshiro256++ seeded through SplitMix64 — not the ChaCha stream of the real
//! `StdRng`, but every consumer in this workspace only relies on
//! *reproducibility for a fixed seed*, never on the exact stream.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Values samplable uniformly from their full domain (`rng.gen::<T>()`).
pub trait Standard: Sized {
    /// Samples one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 explicit mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

mod sealed {
    /// Integer/float primitives that support uniform range sampling.
    pub trait UniformPrimitive: Copy + PartialOrd {
        fn sample_range<R: super::RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
    }
}
use sealed::UniformPrimitive;

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl UniformPrimitive for $t {
            fn sample_range<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128;
                let offset = (u128::from(rng.next_u64()) % span) as i128;
                (low as i128 + offset) as $t
            }
        }
    )*};
}
uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl UniformPrimitive for f32 {
    fn sample_range<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
        assert!(low < high, "gen_range: empty range");
        low + (high - low) * f32::sample_standard(rng)
    }
}

impl UniformPrimitive for f64 {
    fn sample_range<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
        assert!(low < high, "gen_range: empty range");
        low + (high - low) * f64::sample_standard(rng)
    }
}

/// Range arguments accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: UniformPrimitive> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(self.start, self.end, rng)
    }
}

macro_rules! inclusive_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (low, high) = self.into_inner();
                assert!(low <= high, "gen_range: empty inclusive range");
                let span = (high as i128 - low as i128 + 1) as u128;
                let offset = (u128::from(rng.next_u64()) % span) as i128;
                (low as i128 + offset) as $t
            }
        }
    )*};
}
inclusive_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly over the type's standard domain
    /// (`[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from a half-open range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of reproducible generators from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard PRNG: xoshiro256++ seeded via SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

/// Slice helpers, mirroring `rand::seq`.
pub mod seq {
    use super::RngCore;

    /// In-place random reordering of slices.
    pub trait SliceRandom {
        /// Shuffles the slice uniformly (Fisher-Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

/// Distribution objects, mirroring `rand::distributions`.
pub mod distributions {
    use super::{sealed::UniformPrimitive, RngCore};

    /// A distribution samplable with an RNG.
    pub trait Distribution<T> {
        /// Samples one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Uniform distribution over `[low, high)`.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct Uniform<T> {
        low: T,
        high: T,
    }

    impl<T: UniformPrimitive> Uniform<T> {
        /// Creates the distribution; `low < high` is required.
        pub fn new(low: T, high: T) -> Self {
            assert!(low < high, "Uniform::new: empty range");
            Self { low, high }
        }
    }

    impl<T: UniformPrimitive> Distribution<T> for Uniform<T> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
            T::sample_range(self.low, self.high, rng)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let f = rng.gen_range(-2.0f32..0.5);
            assert!((-2.0..0.5).contains(&f));
            let v = rng.gen::<f32>();
            assert!((0.0..1.0).contains(&v));
            let i = rng.gen_range(-5isize..-1);
            assert!((-5..-1).contains(&i));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }
}
