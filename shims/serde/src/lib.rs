//! Offline stand-in for the subset of `serde` this workspace uses.
//!
//! The workspace derives `Serialize`/`Deserialize` on its public types so
//! they stay serialization-ready, but never serializes at runtime (there is
//! no `serde_json` offline). The traits are therefore markers, and the derive
//! macros (re-exported from the sibling `serde_derive` shim) expand to marker
//! impls.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize<'de>`.
///
/// The lifetime parameter exists so `T: Deserialize<'de>` bounds written
/// against real serde still compile.
pub trait Deserialize<'de>: de::DeserializeOwned {}

impl<'de, T: de::DeserializeOwned> Deserialize<'de> for T {}

/// Deserialization marker traits, mirroring `serde::de`.
pub mod de {
    /// Marker stand-in for `serde::de::DeserializeOwned`; the derive macro
    /// implements this, and the blanket impl in the crate root maps it onto
    /// [`crate::Deserialize`] for every lifetime.
    pub trait DeserializeOwned {}
}
