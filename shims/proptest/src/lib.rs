//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! Provides random-sampling property testing: each `proptest!` test function
//! draws `ProptestConfig::cases` inputs from its strategies (seeded
//! deterministically from the test name, so failures reproduce) and runs the
//! body on each. Shrinking is out of scope — on failure the panic message
//! carries the failing case index so the seed can be replayed.
//!
//! Supported surface: [`Strategy`] (ranges, tuples, `Just`, `prop_map`,
//! `prop_flat_map`, boxed unions), [`collection::vec`], the [`proptest!`],
//! [`prop_assert!`], [`prop_assert_eq!`] and [`prop_oneof!`] macros, and
//! [`ProptestConfig::with_cases`].

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SampleRange};
use std::ops::Range;

// Re-exported so the `proptest!` macro can name the RNG from any downstream
// crate without that crate depending on `rand` itself.
#[doc(hidden)]
pub use rand;

/// Runner configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A generator of random values of type `Self::Value`.
///
/// Object safe: combinators require `Self: Sized`, so
/// `Box<dyn Strategy<Value = V>>` is itself a strategy.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }

    /// Builds a second strategy from each generated value and samples it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { base: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// A boxed, type-erased strategy (`proptest::strategy::BoxedStrategy`).
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

/// Boxes a strategy, erasing its concrete type.
pub fn boxed<S: Strategy + 'static>(strategy: S) -> BoxedStrategy<S::Value> {
    Box::new(strategy)
}

/// Strategy that always yields a clone of one value
/// (`proptest::strategy::Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

/// Result of [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

/// Uniform choice between boxed strategies (backs [`prop_oneof!`]).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// A union over `options`; at least one option is required.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Self { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut StdRng) -> V {
        let idx = (rng.next_u64() % self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

impl<T> Strategy for Range<T>
where
    T: Copy,
    Range<T>: SampleRange<T>,
{
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+ $(,)?))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}
tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;

    /// Length specifications accepted by [`vec()`]: an exact `usize` or a
    /// half-open `Range<usize>`.
    pub trait SizeRange {
        /// Draws a concrete length.
        fn pick(&self, rng: &mut StdRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut StdRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// Strategy for vectors of values drawn from `element`.
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// Generates vectors whose length follows `len` and whose elements follow
    /// `element`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = self.len.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Deterministic per-test seed derived from the test's name (FNV-1a).
pub fn seed_for(test_name: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in test_name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// One-stop imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_oneof, proptest, Just, ProptestConfig, Strategy,
    };
    /// Strategy namespace alias (`proptest::prelude::prop`).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Declares property-based test functions, mirroring `proptest::proptest!`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@funcs ($config); $($rest)*);
    };
    (@funcs ($config:expr);) => {};
    (@funcs ($config:expr);
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng: $crate::rand::rngs::StdRng = $crate::rand::SeedableRng::seed_from_u64(
                $crate::seed_for(concat!(module_path!(), "::", stringify!($name))),
            );
            for case in 0..config.cases {
                let mut run = || -> ::std::result::Result<(), ::std::string::String> {
                    $(let $pat = $crate::Strategy::generate(&($strategy), &mut rng);)*
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                };
                if let Err(message) = run() {
                    panic!("proptest case {case} of {} failed: {message}", stringify!($name));
                }
            }
        }
        $crate::proptest!(@funcs ($config); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@funcs ($crate::ProptestConfig::default()); $($rest)*);
    };
}

/// Property assertion, mirroring `proptest::prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Property equality assertion, mirroring `proptest::prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left),
                stringify!($right),
                left,
                right
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    }};
}

/// Uniform choice between strategies, mirroring `proptest::prop_oneof!`.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(::std::vec![$($crate::boxed($strategy)),+])
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn pair() -> impl Strategy<Value = (usize, Vec<f32>)> {
        (1usize..5)
            .prop_flat_map(|n| crate::collection::vec(-1.0f32..1.0, n).prop_map(move |v| (n, v)))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..9, y in -2.0f32..2.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y), "y out of range: {}", y);
        }

        #[test]
        fn flat_map_links_length(( n, v) in pair()) {
            prop_assert_eq!(v.len(), n);
        }

        #[test]
        fn oneof_and_just_yield_listed_values(v in prop_oneof![Just(1u32), Just(5u32)]) {
            prop_assert!(v == 1 || v == 5);
        }
    }

    #[test]
    fn seeds_differ_by_name() {
        assert_ne!(super::seed_for("a"), super::seed_for("b"));
        assert_eq!(super::seed_for("a"), super::seed_for("a"));
    }
}
