//! No-op `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros for the
//! offline serde stand-in.
//!
//! The workspace only ever *derives* the serde traits (to keep its public
//! types serialization-ready for downstream users); nothing serializes at
//! runtime. The real derive expansion is therefore replaced by a marker-trait
//! implementation, which keeps `T: Serialize` bounds satisfiable without any
//! code generation machinery (`syn`/`quote` are unavailable offline).

#![forbid(unsafe_code)]

use proc_macro::{TokenStream, TokenTree};

/// Extracts the type name and a raw generics fragment (e.g. `<'a, T>`) from a
/// `struct`/`enum` definition token stream.
fn type_header(input: TokenStream) -> Option<(String, String)> {
    let mut tokens = input.into_iter().peekable();
    // Skip attributes (`# [...]`) and visibility/keywords until struct/enum.
    for tok in tokens.by_ref() {
        if let TokenTree::Ident(ident) = &tok {
            let word = ident.to_string();
            if word == "struct" || word == "enum" || word == "union" {
                break;
            }
        }
    }
    let name = match tokens.next()? {
        TokenTree::Ident(ident) => ident.to_string(),
        _ => return None,
    };
    // Collect a generics fragment if one follows: `< ... >` at depth 0.
    let mut generics = String::new();
    if matches!(&tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        let mut depth = 0i32;
        for tok in tokens.by_ref() {
            let text = tok.to_string();
            if text == "<" {
                depth += 1;
            } else if text == ">" {
                depth -= 1;
            }
            generics.push_str(&text);
            generics.push(' ');
            if depth == 0 {
                break;
            }
        }
    }
    Some((name, generics))
}

fn marker_impl(input: TokenStream, trait_path: &str) -> TokenStream {
    match type_header(input) {
        // Generic types would need bounds plumbing; every serde-derived type
        // in this workspace is non-generic, so only that case is emitted.
        Some((name, generics)) if generics.is_empty() => {
            format!("impl {trait_path} for {name} {{}}")
                .parse()
                .expect("marker impl must parse")
        }
        _ => TokenStream::new(),
    }
}

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "::serde::Serialize")
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "::serde::de::DeserializeOwned")
}
