//! Cross-crate integration tests: running SNN inference through the
//! systolic-array model, with and without stuck-at faults.

use falvolt::SystolicBackend;
use falvolt_snn::config::ArchitectureConfig;
use falvolt_snn::loss::MseRateLoss;
use falvolt_snn::optim::Adam;
use falvolt_snn::trainer::{evaluate, Batch, Trainer};
use falvolt_snn::SpikingNetwork;
use falvolt_systolic::{FaultMap, StuckAt, SystolicConfig};
use falvolt_tensor::{init, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Builds a tiny 4-class problem (one bright quadrant per class) and trains
/// the tiny test architecture on it.
fn trained_tiny_network() -> (SpikingNetwork, Vec<Batch>) {
    let config = ArchitectureConfig::tiny_test();
    let mut network = config.build(17).unwrap();
    let mut rng = StdRng::seed_from_u64(6);
    let mut batches = Vec::new();
    for _ in 0..4 {
        let mut input = init::uniform(&[4, 1, 8, 8], 0.0, 0.1, &mut rng);
        for c in 0..4 {
            let (y0, x0) = ((c / 2) * 4, (c % 2) * 4);
            for y in y0..y0 + 4 {
                for x in x0..x0 + 4 {
                    input.set(&[c, 0, y, x], 1.0);
                }
            }
        }
        batches.push(Batch::new(input, vec![0, 1, 2, 3]).unwrap());
    }
    let mut trainer = Trainer::new(Adam::new(1e-2), MseRateLoss::new(), config.classes);
    for _ in 0..25 {
        trainer.train_epoch(&mut network, &batches).unwrap();
    }
    (network, batches)
}

#[test]
fn fault_free_systolic_inference_preserves_accuracy() {
    let (mut network, test) = trained_tiny_network();
    let float_accuracy = evaluate(&mut network, &test).unwrap();
    assert!(
        float_accuracy >= 0.75,
        "baseline must be well above the 25% chance level, got {float_accuracy}"
    );

    let systolic = SystolicConfig::new(16, 16).unwrap();
    network.set_backend(SystolicBackend::shared(systolic, FaultMap::new(systolic)));
    let systolic_accuracy = evaluate(&mut network, &test).unwrap();
    assert!(
        (float_accuracy - systolic_accuracy).abs() <= 0.25,
        "fixed-point quantization alone must not collapse accuracy: float {float_accuracy}, systolic {systolic_accuracy}"
    );
}

#[test]
fn msb_stuck_at_one_faults_collapse_accuracy() {
    let (mut network, test) = trained_tiny_network();
    let baseline = evaluate(&mut network, &test).unwrap();

    let systolic = SystolicConfig::new(8, 8).unwrap();
    let mut rng = StdRng::seed_from_u64(11);
    // 30% of the PEs with stuck-at-1 faults in the accumulator sign bit: the
    // worst case of the paper's vulnerability analysis.
    let fault_map = FaultMap::random_with_rate(
        &systolic,
        0.30,
        systolic.accumulator_format().msb(),
        StuckAt::One,
        &mut rng,
    )
    .unwrap();
    network.set_backend(SystolicBackend::shared(systolic, fault_map));
    let faulty = evaluate(&mut network, &test).unwrap();
    assert!(
        faulty <= baseline - 0.2 || faulty <= 0.5,
        "heavy MSB faults should visibly degrade accuracy: baseline {baseline}, faulty {faulty}"
    );
}

#[test]
fn lsb_faults_are_much_milder_than_msb_faults() {
    let (mut network, test) = trained_tiny_network();
    let systolic = SystolicConfig::new(8, 8).unwrap();
    let mut rng = StdRng::seed_from_u64(23);
    let pes = 16;

    let msb_map = FaultMap::random_faulty_pes(
        &systolic,
        pes,
        systolic.accumulator_format().msb(),
        StuckAt::One,
        &mut rng,
    )
    .unwrap();
    let lsb_map = FaultMap::from_faults(
        *msb_map.config(),
        msb_map
            .faults()
            .iter()
            .map(|f| falvolt_systolic::Fault::new(f.pe, 0, f.kind))
            .collect(),
    )
    .unwrap();

    network.set_backend(SystolicBackend::shared(systolic, lsb_map));
    let lsb_accuracy = evaluate(&mut network, &test).unwrap();
    network.set_backend(SystolicBackend::shared(systolic, msb_map));
    let msb_accuracy = evaluate(&mut network, &test).unwrap();
    assert!(
        msb_accuracy <= lsb_accuracy + 0.05,
        "MSB faults ({msb_accuracy}) must hurt at least as much as LSB faults ({lsb_accuracy})"
    );
}

#[test]
fn bypassed_faulty_pes_behave_like_weight_pruning() {
    // Cross-validation of the two fault abstractions used in the paper and in
    // this reproduction: running the *original* weights on an array whose
    // faulty PEs are bypassed must be equivalent to zeroing the mapped
    // weights and running on a clean array.
    let (mut network, test) = trained_tiny_network();
    let systolic = SystolicConfig::new(8, 8).unwrap();
    let mut rng = StdRng::seed_from_u64(29);
    let fault_map = FaultMap::random_with_rate(
        &systolic,
        0.3,
        systolic.accumulator_format().msb(),
        StuckAt::One,
        &mut rng,
    )
    .unwrap();

    // Path A: hardware bypass, original weights.
    let baseline_state = network.export_parameters();
    network.set_backend(std::sync::Arc::new(SystolicBackend::with_bypass(
        systolic,
        fault_map.clone(),
    )));
    let bypass_accuracy = evaluate(&mut network, &test).unwrap();

    // Path B: software pruning (FaP), clean float backend.
    network.set_backend(falvolt_snn::FloatBackend::shared());
    network.import_parameters(&baseline_state).unwrap();
    let masks = falvolt::prune::PruneMasks::derive(&mut network, &fault_map);
    masks.apply(&mut network).unwrap();
    let pruned_accuracy = evaluate(&mut network, &test).unwrap();

    assert!(
        (bypass_accuracy - pruned_accuracy).abs() <= 0.25,
        "bypass ({bypass_accuracy}) and pruning ({pruned_accuracy}) should agree up to quantization"
    );
}

#[test]
fn temporal_event_input_runs_through_faulty_accelerator() {
    // The neuromorphic input path ([N, T, C, H, W]) must work through the
    // systolic backend as well.
    let config = ArchitectureConfig::tiny_test();
    let mut network = config.build(3).unwrap();
    let systolic = SystolicConfig::new(8, 8).unwrap();
    let mut rng = StdRng::seed_from_u64(31);
    let fault_map = FaultMap::random_faulty_pes(&systolic, 4, 15, StuckAt::One, &mut rng).unwrap();
    network.set_backend(SystolicBackend::shared(systolic, fault_map));
    let events = Tensor::from_fn(&[2, config.time_steps, 1, 8, 8], |i| {
        ((i % 5) == 0) as u8 as f32
    });
    let labels = network.predict(&events).unwrap();
    assert_eq!(labels.len(), 2);
}
