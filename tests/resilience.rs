//! Resilient campaign execution, end to end: a campaign killed mid-run and
//! resumed from its checkpoint must be **bit-identical** to an uninterrupted
//! run, at every worker count; and the content identities a checkpoint
//! rests on (the plan fingerprint, the per-cell seeds behind the drawn
//! fault-map pools) must be stable across serialization and resume.

use falvolt::campaign::{Axis, Campaign, CampaignCheckpoint};
use falvolt::experiment::{DatasetKind, ExperimentContext, ExperimentScale};
use falvolt_tensor::CancelToken;
use proptest::prelude::*;
use std::sync::{Arc, Mutex, OnceLock};

/// One shared trained context: preparing it trains the Tiny baseline once
/// for the whole file; the mutex serialises the campaigns (which mutate and
/// restore the context's network).
fn ctx() -> &'static Mutex<ExperimentContext> {
    static CTX: OnceLock<Mutex<ExperimentContext>> = OnceLock::new();
    CTX.get_or_init(|| {
        Mutex::new(
            ExperimentContext::prepare(DatasetKind::Mnist, ExperimentScale::Tiny, 42)
                .expect("resilience context must prepare"),
        )
    })
}

/// Runs `f` under a fixed rayon worker count (cleared on drop, even on
/// panic) — the override is process-global, and checkpoint/resume must not
/// depend on how many workers either half of the run used.
fn with_workers<T>(workers: usize, f: impl FnOnce() -> T) -> T {
    struct ClearOverride;
    impl Drop for ClearOverride {
        fn drop(&mut self) {
            rayon::set_thread_count_override(0);
        }
    }
    let _guard = ClearOverride;
    rayon::set_thread_count_override(workers);
    f()
}

/// The evaluation plan under test: four faulty-PE cells, two maps each.
fn pe_plan(ctx: &mut ExperimentContext, seed: u64) -> Campaign<'_> {
    Campaign::new(ctx)
        .axis(Axis::FaultyPes(vec![0, 2, 4, 6]))
        .scenarios_per_cell(2)
        .seed(seed)
}

/// Runs the plan, kills it by tripping the cancel token from the checkpoint
/// sink after `kill_after_waves` checkpoints, and returns the last
/// checkpoint it emitted.
fn run_and_kill(
    ctx: &mut ExperimentContext,
    seed: u64,
    kill_after_waves: usize,
) -> CampaignCheckpoint {
    let seen: Arc<Mutex<Vec<CampaignCheckpoint>>> = Arc::new(Mutex::new(Vec::new()));
    let token = CancelToken::new();
    let sink_seen = Arc::clone(&seen);
    let sink_token = token.clone();
    let partial = pe_plan(ctx, seed)
        .checkpoint_every(1)
        .checkpoint_sink(move |cp| {
            let mut seen = sink_seen
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            seen.push(cp.clone());
            if seen.len() >= kill_after_waves {
                sink_token.cancel();
            }
        })
        .cancel_token(token)
        .run()
        .expect("the killed run still returns its completed prefix");
    assert!(
        partial.skipped() > 0,
        "the kill must leave unexecuted cells for resume to do real work"
    );
    let seen = seen
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    seen.last().cloned().expect("at least one checkpoint")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    #[test]
    fn killed_and_resumed_equals_uninterrupted(
        seed in 0u64..1000,
        kill_after in 1usize..3,
        workers in prop_oneof![Just(1usize), Just(4usize)],
    ) {
        let mut guard = ctx().lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let ctx = &mut *guard;
        with_workers(workers, || {
            let full = pe_plan(ctx, seed).run().unwrap();
            let checkpoint = run_and_kill(ctx, seed, kill_after);
            // Round-trip through the JSON wire format before resuming: the
            // bit-hex float encoding must not perturb a single ULP.
            let reloaded = CampaignCheckpoint::from_json(&checkpoint.to_json()).unwrap();
            assert_eq!(reloaded, checkpoint);
            let resumed = pe_plan(ctx, seed).resume(reloaded).run().unwrap();
            assert_eq!(resumed, full, "killed-and-resumed != uninterrupted");
        });
    }

    #[test]
    fn resume_is_worker_count_independent(seed in 0u64..1000) {
        // Kill under one worker, resume under four (and vice versa): the
        // merged result must still match the uninterrupted single-worker run.
        let mut guard = ctx().lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let ctx = &mut *guard;
        let full = with_workers(1, || pe_plan(ctx, seed).run().unwrap());
        let checkpoint = with_workers(1, || run_and_kill(ctx, seed, 1));
        let resumed = with_workers(4, || {
            pe_plan(ctx, seed).resume(checkpoint).run().unwrap()
        });
        prop_assert_eq!(&resumed, &full);
        let checkpoint = with_workers(4, || run_and_kill(ctx, seed, 2));
        let resumed = with_workers(1, || {
            pe_plan(ctx, seed).resume(checkpoint).run().unwrap()
        });
        prop_assert_eq!(&resumed, &full);
    }
}

#[test]
fn checkpoint_identities_are_stable_across_kill_serialize_resume() {
    let mut guard = ctx()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let ctx = &mut *guard;

    // The plan fingerprint is a content id: two identical plans agree on
    // it, run after run.
    let first = run_and_kill(ctx, 7, 1);
    let second = run_and_kill(ctx, 7, 2);
    assert_eq!(
        first.fingerprint(),
        second.fingerprint(),
        "the same plan must fingerprint identically on every run"
    );
    assert_ne!(
        run_and_kill(ctx, 8, 1).fingerprint(),
        first.fingerprint(),
        "a different seed is a different plan"
    );

    // Completed cells recorded before the kill are reused verbatim on
    // resume: the final checkpoint of the resumed run carries the same
    // accuracies an uninterrupted run computes, bit for bit.
    let full = pe_plan(ctx, 7).run().unwrap();
    let final_cp: Arc<Mutex<Option<CampaignCheckpoint>>> = Arc::new(Mutex::new(None));
    let sink_cp = Arc::clone(&final_cp);
    let resumed = pe_plan(ctx, 7)
        .resume(CampaignCheckpoint::from_json(&second.to_json()).unwrap())
        .checkpoint_every(1)
        .checkpoint_sink(move |cp| {
            *sink_cp
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(cp.clone());
        })
        .run()
        .unwrap();
    assert_eq!(resumed, full);
    let final_cp = final_cp
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .clone()
        .expect("a final checkpoint");
    assert!(final_cp.is_complete());
    assert_eq!(final_cp.total_cells(), full.len());
    assert_eq!(final_cp.fingerprint(), first.fingerprint());
}

#[test]
fn retraining_cells_resume_bit_identically() {
    // The retraining path (Mitigator over scenario views) goes through the
    // checkpoint too: kill a threshold sweep after its first cell and
    // resume it.
    let mut guard = ctx()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let ctx = &mut *guard;
    fn plan(ctx: &mut ExperimentContext) -> Campaign<'_> {
        Campaign::new(ctx)
            .axis(Axis::FaultRate(vec![0.3]))
            .axis(Axis::Threshold(vec![0.6, 1.0]))
            .retrain_epochs(1)
    }
    let full = plan(ctx).run().unwrap();
    let token = CancelToken::new();
    let seen: Arc<Mutex<Vec<CampaignCheckpoint>>> = Arc::new(Mutex::new(Vec::new()));
    let sink_seen = Arc::clone(&seen);
    let sink_token = token.clone();
    let partial = plan(ctx)
        .checkpoint_every(1)
        .checkpoint_sink(move |cp| {
            sink_seen
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .push(cp.clone());
            sink_token.cancel();
        })
        .cancel_token(token)
        .run()
        .unwrap();
    assert_eq!(partial.completed(), 1);
    let checkpoint = seen
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .first()
        .cloned()
        .unwrap();
    let reloaded = CampaignCheckpoint::from_json(&checkpoint.to_json()).unwrap();
    let resumed = plan(ctx).resume(reloaded).run().unwrap();
    assert_eq!(resumed, full);
    // The mitigation outcomes (histories, thresholds) round-tripped through
    // the checkpoint wire format inside that equality; spot-check one.
    assert_eq!(resumed.cells()[0].outcomes, full.cells()[0].outcomes);
}
