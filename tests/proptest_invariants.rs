//! Cross-crate property-based tests on the core invariants of the
//! reproduction.

use falvolt::prune::PruneMasks;
use falvolt_snn::config::ArchitectureConfig;
use falvolt_snn::neuron::NeuronConfig;
use falvolt_snn::{Mode, SpikingNetwork};
use falvolt_systolic::{FaultMap, StuckAt, SystolicConfig};
use falvolt_tensor::Tensor;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn tiny_network(threshold: f32) -> SpikingNetwork {
    ArchitectureConfig::tiny_test()
        .with_neuron(NeuronConfig::paper_default().with_threshold(threshold))
        .build(5)
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn network_outputs_are_valid_firing_rates(seed in 0u64..50, amplitude in 0.0f32..2.0) {
        let mut network = tiny_network(1.0);
        let mut rng = StdRng::seed_from_u64(seed);
        let input = falvolt_tensor::init::uniform(&[2, 1, 8, 8], 0.0, amplitude.max(0.01), &mut rng);
        let rates = network.forward(&input, Mode::Eval).unwrap();
        prop_assert_eq!(rates.shape(), &[2, 4]);
        // Firing rates are averages of binary spikes over T steps.
        for &r in rates.data() {
            prop_assert!((0.0..=1.0).contains(&r));
            let scaled = r * network.time_steps() as f32;
            prop_assert!((scaled - scaled.round()).abs() < 1e-5);
        }
    }

    #[test]
    fn eval_forward_is_deterministic(seed in 0u64..50) {
        let mut network = tiny_network(1.0);
        let mut rng = StdRng::seed_from_u64(seed);
        let input = falvolt_tensor::init::uniform(&[3, 1, 8, 8], 0.0, 1.0, &mut rng);
        let a = network.forward(&input, Mode::Eval).unwrap();
        let b = network.forward(&input, Mode::Eval).unwrap();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn raising_the_threshold_never_increases_total_spiking(seed in 0u64..30) {
        // Single forward pass: a higher threshold voltage can only suppress
        // spikes, never create them (monotonicity of Eq. 1).
        let mut low = tiny_network(0.5);
        let mut high = tiny_network(1.5);
        // Identical weights (same build seed), only the threshold differs.
        let mut rng = StdRng::seed_from_u64(seed);
        let input = falvolt_tensor::init::uniform(&[2, 1, 8, 8], 0.0, 1.5, &mut rng);
        let low_rates = low.forward(&input, Mode::Eval).unwrap();
        let high_rates = high.forward(&input, Mode::Eval).unwrap();
        let low_total: f32 = low_rates.data().iter().sum();
        let high_total: f32 = high_rates.data().iter().sum();
        prop_assert!(
            high_total <= low_total + 1e-5,
            "threshold 1.5 produced more output spikes ({}) than 0.5 ({})",
            high_total,
            low_total
        );
    }

    #[test]
    fn prune_fraction_tracks_fault_rate(seed in 0u64..50, rate in 0.0f64..0.9) {
        let mut network = tiny_network(1.0);
        let systolic = SystolicConfig::new(4, 4).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let fault_map =
            FaultMap::random_with_rate(&systolic, rate, 15, StuckAt::One, &mut rng).unwrap();
        let masks = PruneMasks::derive(&mut network, &fault_map);
        // The realized PE fault rate (after rounding to an integer PE count).
        let realized = fault_map.fault_rate();
        // For layers larger than the array the pruned fraction equals the PE
        // fault rate; small layers can deviate, so allow a generous band.
        prop_assert!((masks.pruned_fraction() - realized).abs() < 0.30);
        // Applying masks twice is idempotent.
        masks.apply(&mut network).unwrap();
        let after_once: Vec<Tensor> = network.export_parameters();
        masks.apply(&mut network).unwrap();
        prop_assert_eq!(after_once, network.export_parameters());
    }

    #[test]
    fn fault_free_prune_masks_are_identity(seed in 0u64..20) {
        let mut network = tiny_network(1.0);
        let systolic = SystolicConfig::new(8, 8).unwrap();
        let before = network.export_parameters();
        let masks = PruneMasks::derive(&mut network, &FaultMap::new(systolic));
        masks.apply(&mut network).unwrap();
        prop_assert_eq!(before, network.export_parameters());
        let _ = seed;
    }

    #[test]
    fn event_engine_is_bit_identical_under_fault_injection(
        seed in 0u64..50,
        faulty_pes in 1usize..8,
        bit_choice in 0usize..2,
    ) {
        // The acceptance bar of the event-driven engine: with a non-empty
        // FaultMap installed through the SystolicBackend, turning the engine
        // (prefix cache + spike-sparsity kernels) on or off must not change a
        // single bit of the fault-injection output — the faulty accumulator
        // chain replays identically and the prefix cache reuses the identical
        // computation.
        use falvolt::SystolicBackend;
        let systolic = SystolicConfig::new(4, 4).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let bit = [0u32, 15][bit_choice]; // LSB and MSB stuck-at faults
        let fault_map = FaultMap::random_faulty_pes(
            &systolic,
            faulty_pes,
            bit,
            StuckAt::One,
            &mut rng,
        )
        .unwrap();
        prop_assert!(!fault_map.is_empty());

        let mut engine_on = tiny_network(1.0);
        let mut engine_off = tiny_network(1.0);
        engine_on.set_backend(SystolicBackend::shared(systolic, fault_map.clone()));
        engine_off.set_backend(SystolicBackend::shared(systolic, fault_map));
        engine_off.set_engine_preset(falvolt_snn::EnginePreset::seed_equivalent());

        let input = falvolt_tensor::init::uniform(&[2, 1, 8, 8], 0.0, 1.5, &mut rng);
        let on = engine_on.forward(&input, Mode::Eval).unwrap();
        let off = engine_off.forward(&input, Mode::Eval).unwrap();
        prop_assert_eq!(on.data(), off.data());
    }

    #[test]
    fn fig5_sweep_is_bit_identical_across_workers_caches_and_chain_modes(
        seed in 0u64..40,
        faulty_pes in 1usize..9,
    ) {
        // The scenario-throughput engine's acceptance bar: a Fig-5-shaped
        // sweep (several fault maps, one of them non-empty by construction,
        // plus the empty map) must produce bit-identical accuracies
        //
        //   * sequentially on per-clone deep copies with replayed mask
        //     chains and no caches (the PR 2 engine), vs
        //   * fanned out through `parallel_accuracies` (scenario views,
        //     sweep + product caches, composed chains) with 1 worker, vs
        //   * the same with several workers.
        use falvolt::vulnerability::{parallel_accuracies, reference_accuracies};
        use falvolt_snn::trainer::Batch;

        let systolic = SystolicConfig::new(4, 4).unwrap();
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(7000));
        let mut scenarios = vec![(systolic, FaultMap::new(systolic))];
        for _ in 0..3 {
            scenarios.push((
                systolic,
                FaultMap::random_faulty_pes(&systolic, faulty_pes, 15, StuckAt::One, &mut rng)
                    .unwrap(),
            ));
        }
        prop_assert!(scenarios.iter().skip(1).all(|(_, m)| !m.is_empty()));

        let network = tiny_network(1.0);
        let test: Vec<Batch> = (0..2)
            .map(|b| {
                let input = falvolt_tensor::init::uniform(
                    &[4, 1, 8, 8],
                    0.0,
                    1.4,
                    &mut StdRng::seed_from_u64(seed ^ (b as u64) << 32),
                );
                Batch::new(input, vec![0, 1, 2, 3]).unwrap()
            })
            .collect();

        let reference = reference_accuracies(&network, &scenarios, &test).unwrap();

        // Force worker counts through the shim's race-free override (env
        // mutation would race the getenv calls of concurrently running
        // tests). The override is process-global, which is harmless: every
        // computation in this suite is worker-count-independent — that is
        // the invariant under test. A drop guard clears it even when a
        // worker panics mid-sweep.
        struct ClearOverride;
        impl Drop for ClearOverride {
            fn drop(&mut self) {
                rayon::set_thread_count_override(0);
            }
        }
        for workers in [1usize, 4] {
            let fanned = {
                let _guard = ClearOverride;
                rayon::set_thread_count_override(workers);
                parallel_accuracies(&network, scenarios.clone(), &test)
            };
            prop_assert_eq!(
                fanned.unwrap(),
                reference.clone(),
                "sweep accuracies changed with {} workers",
                workers
            );
        }
    }

    #[test]
    fn csr_forward_is_bit_identical_to_probe_forward(
        seed in 0u64..50,
        faulty_pes in 1usize..8,
    ) {
        // The CSR acceptance bar: with only the spike-index switch differing
        // (spike kernels and prefix cache on in both runs), forwards must be
        // bit-identical — on the float backend (index-walking kernels vs
        // probe-based kernels) and through the systolic model with a
        // non-empty FaultMap (index-fed event walk vs per-row scratch
        // rebuild on the faulty path).
        use falvolt::SystolicBackend;
        use falvolt_snn::EnginePreset;
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(9000));
        let input = falvolt_tensor::init::uniform(&[3, 1, 8, 8], 0.0, 1.6, &mut rng);
        let probe_engine = EnginePreset::full().with_csr_spikes(false);

        let mut csr = tiny_network(1.0);
        let mut probe = tiny_network(1.0);
        probe.set_engine_preset(probe_engine);
        let a = csr.forward(&input, Mode::Eval).unwrap();
        let b = probe.forward(&input, Mode::Eval).unwrap();
        prop_assert_eq!(a.data(), b.data(), "float backend diverged");

        let systolic = SystolicConfig::new(4, 4).unwrap();
        let fault_map =
            FaultMap::random_faulty_pes(&systolic, faulty_pes, 15, StuckAt::One, &mut rng)
                .unwrap();
        prop_assert!(!fault_map.is_empty());
        let mut csr = tiny_network(1.0);
        let mut probe = tiny_network(1.0);
        csr.set_backend(SystolicBackend::shared(systolic, fault_map.clone()));
        probe.set_backend(SystolicBackend::shared(systolic, fault_map));
        probe.set_engine_preset(probe_engine);
        let a = csr.forward(&input, Mode::Eval).unwrap();
        let b = probe.forward(&input, Mode::Eval).unwrap();
        prop_assert_eq!(a.data(), b.data(), "faulty systolic backend diverged");
    }

    #[test]
    fn prefix_cache_is_exact_under_faulty_systolic_backend(seed in 0u64..50) {
        // Same bar, isolating the prefix cache: only the caching switch
        // differs, the kernels stay hinted on both sides.
        use falvolt::SystolicBackend;
        use falvolt_snn::EnginePreset;
        let systolic = SystolicConfig::new(4, 4).unwrap();
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(1000));
        let fault_map =
            FaultMap::random_faulty_pes(&systolic, 3, 15, StuckAt::One, &mut rng).unwrap();

        let mut cached = tiny_network(1.0);
        let mut uncached = tiny_network(1.0);
        cached.set_backend(SystolicBackend::shared(systolic, fault_map.clone()));
        uncached.set_backend(SystolicBackend::shared(systolic, fault_map));
        uncached.set_engine_preset(EnginePreset::full().with_prefix_cache(false));

        let input = falvolt_tensor::init::uniform(&[2, 1, 8, 8], 0.0, 1.2, &mut rng);
        let a = cached.forward(&input, Mode::Eval).unwrap();
        let b = uncached.forward(&input, Mode::Eval).unwrap();
        prop_assert_eq!(a.data(), b.data());
    }
}
