//! End-to-end experiment-flow integration test: dataset generation, baseline
//! training, fault injection, and all three mitigation strategies, exercised
//! exactly the way the benchmark harness drives them (at the Tiny scale).

use falvolt::experiment::{
    convergence_experiment, faulty_pe_experiment, mitigation_comparison, DatasetKind,
    ExperimentContext, ExperimentScale,
};

#[test]
fn mnist_like_experiment_flow_reproduces_the_papers_shape() {
    let scale = ExperimentScale::Tiny;
    let mut ctx = ExperimentContext::prepare(DatasetKind::Mnist, scale, 42)
        .expect("experiment preparation must succeed");

    // The fault-free baseline must be far above the 10% chance level — the
    // paper's baseline is 99%; the Tiny synthetic setup should reach at least
    // 60% with its handful of samples and epochs.
    let baseline = ctx.baseline_accuracy();
    assert!(
        baseline >= 0.6,
        "baseline accuracy {baseline} too low for the experiment to be meaningful"
    );

    // Figure 5b shape: more faulty PEs (MSB stuck-at-1) never help, and a
    // substantial number of faulty PEs causes a visible drop.
    let report = faulty_pe_experiment(&mut ctx, &[0, 32]).expect("faulty-PE sweep");
    let clean = report.series.points[0].accuracy;
    let heavy = report.series.points[1].accuracy;
    assert!(
        heavy <= clean + 0.05,
        "32 faulty PEs ({heavy}) should not beat the clean array ({clean})"
    );

    // Figures 6/7 shape: FalVolt >= FaPIT >= FaP (within a small tolerance)
    // and FalVolt recovers most of the baseline at a 30% fault rate.
    let epochs = scale.retrain_epochs();
    let comparison =
        mitigation_comparison(&mut ctx, &[0.30], epochs).expect("mitigation comparison");
    let accuracy_of = |strategy: &str| {
        comparison
            .rows
            .iter()
            .find(|r| r.strategy == strategy)
            .map(|r| r.accuracy)
            .expect("strategy present")
    };
    let fap = accuracy_of("FaP");
    let fapit = accuracy_of("FaPIT");
    let falvolt = accuracy_of("FalVolt");
    assert!(
        falvolt + 0.05 >= fapit,
        "FalVolt ({falvolt}) should not trail FaPIT ({fapit}) by more than noise"
    );
    assert!(
        falvolt >= fap,
        "FalVolt ({falvolt}) must beat pruning-only FaP ({fap})"
    );
    assert!(
        falvolt >= baseline - 0.3,
        "FalVolt ({falvolt}) should recover most of the baseline ({baseline})"
    );

    // Figure 6 shape: FalVolt actually learned per-layer thresholds (at least
    // one layer moved away from the initial 1.0).
    let falvolt_row = comparison
        .rows
        .iter()
        .find(|r| r.strategy == "FalVolt")
        .unwrap();
    assert!(
        falvolt_row
            .thresholds
            .iter()
            .any(|(_, v)| (*v - 1.0).abs() > 1e-3),
        "FalVolt should adapt at least one layer threshold, got {:?}",
        falvolt_row.thresholds
    );

    // Figure 8 shape: per-epoch histories exist for both strategies and
    // FalVolt's final point is at least as good as FaPIT's.
    let convergence = convergence_experiment(&mut ctx, 0.30, epochs).expect("convergence");
    assert_eq!(convergence.fapit.len(), epochs + 1);
    assert_eq!(convergence.falvolt.len(), epochs + 1);
    let fapit_final = convergence.fapit.last().unwrap().test_accuracy;
    let falvolt_final = convergence.falvolt.last().unwrap().test_accuracy;
    assert!(
        falvolt_final + 0.1 >= fapit_final,
        "FalVolt convergence ({falvolt_final}) should keep up with FaPIT ({fapit_final})"
    );
}
