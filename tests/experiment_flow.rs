//! End-to-end experiment-flow integration test: dataset generation, baseline
//! training, fault injection, and all three mitigation strategies, exercised
//! through the declarative Campaign API exactly the way the benchmark
//! harness drives them (at the Tiny scale).

use falvolt::campaign::{Axis, Campaign};
use falvolt::experiment::{DatasetKind, ExperimentContext, ExperimentScale};
use falvolt::mitigation::MitigationStrategy;

#[test]
fn mnist_like_experiment_flow_reproduces_the_papers_shape() {
    let scale = ExperimentScale::Tiny;
    let mut ctx = ExperimentContext::prepare(DatasetKind::Mnist, scale, 42)
        .expect("experiment preparation must succeed");

    // The fault-free baseline must be far above the 10% chance level — the
    // paper's baseline is 99%; the Tiny synthetic setup should reach at least
    // 60% with its handful of samples and epochs.
    let baseline = ctx.baseline_accuracy();
    assert!(
        baseline >= 0.6,
        "baseline accuracy {baseline} too low for the experiment to be meaningful"
    );

    // Figure 5b shape: more faulty PEs (MSB stuck-at-1) never help, and a
    // substantial number of faulty PEs causes a visible drop.
    let iterations = scale.vulnerability_config().iterations;
    let run = Campaign::new(&mut ctx)
        .axis(Axis::FaultyPes(vec![0, 32]))
        .scenarios_per_cell(iterations)
        .run()
        .expect("faulty-PE campaign");
    assert_eq!(run.len(), 2);
    assert!(run.cells().iter().all(|c| c.scenarios == iterations));
    let clean = run.cells()[0].accuracy;
    let heavy = run.cells()[1].accuracy;
    assert!(
        heavy <= clean + 0.05,
        "32 faulty PEs ({heavy}) should not beat the clean array ({clean})"
    );

    // Figures 6/7 shape: FalVolt >= FaPIT >= FaP (within a small tolerance)
    // and FalVolt recovers most of the baseline at a 30% fault rate.
    let epochs = scale.retrain_epochs();
    let comparison = Campaign::new(&mut ctx)
        .axis(Axis::FaultRate(vec![0.30]))
        .axis(Axis::Mitigation(vec![
            MitigationStrategy::FaP,
            MitigationStrategy::fapit(epochs),
            MitigationStrategy::falvolt(epochs),
        ]))
        .run()
        .expect("mitigation campaign");
    let accuracy_of = |strategy: &str| {
        comparison
            .cells()
            .iter()
            .find(|c| c.outcome().map(|o| o.strategy.as_str()) == Some(strategy))
            .map(|c| c.accuracy)
            .expect("strategy present")
    };
    let fap = accuracy_of("FaP");
    let fapit = accuracy_of("FaPIT");
    let falvolt = accuracy_of("FalVolt");
    assert!(
        falvolt + 0.05 >= fapit,
        "FalVolt ({falvolt}) should not trail FaPIT ({fapit}) by more than noise"
    );
    assert!(
        falvolt >= fap,
        "FalVolt ({falvolt}) must beat pruning-only FaP ({fap})"
    );
    assert!(
        falvolt >= baseline - 0.3,
        "FalVolt ({falvolt}) should recover most of the baseline ({baseline})"
    );

    // Figure 6 shape: FalVolt actually learned per-layer thresholds (at least
    // one layer moved away from the initial 1.0), and the run serializes into
    // a result table the figure code can consume.
    let falvolt_outcome = comparison
        .cells()
        .iter()
        .filter_map(|c| c.outcome())
        .find(|o| o.strategy == "FalVolt")
        .unwrap()
        .clone();
    assert!(
        falvolt_outcome
            .thresholds
            .iter()
            .any(|(_, v)| (*v - 1.0).abs() > 1e-3),
        "FalVolt should adapt at least one layer threshold, got {:?}",
        falvolt_outcome.thresholds
    );
    let table = comparison.into_table();
    assert_eq!(
        table.axes,
        vec!["fault_rate".to_string(), "strategy".to_string()]
    );
    assert_eq!(table.cells.len(), 3);

    // Figure 8 shape: per-epoch histories exist for both strategies and
    // FalVolt's final point is at least as good as FaPIT's.
    let convergence = Campaign::new(&mut ctx)
        .axis(Axis::FaultRate(vec![0.30]))
        .axis(Axis::Mitigation(vec![
            MitigationStrategy::fapit(epochs),
            MitigationStrategy::falvolt(epochs),
        ]))
        .run()
        .expect("convergence campaign");
    let fapit_history = &convergence.cells()[0].outcome().unwrap().history;
    let falvolt_history = &convergence.cells()[1].outcome().unwrap().history;
    assert_eq!(fapit_history.len(), epochs + 1);
    assert_eq!(falvolt_history.len(), epochs + 1);
    let fapit_final = fapit_history.last().unwrap().test_accuracy;
    let falvolt_final = falvolt_history.last().unwrap().test_accuracy;
    assert!(
        falvolt_final + 0.1 >= fapit_final,
        "FalVolt convergence ({falvolt_final}) should keep up with FaPIT ({fapit_final})"
    );
}
