//! Campaign equivalence: every deprecated legacy driver wrapper must be
//! **bit-identical** to its pre-redesign implementation — same series
//! points, same drawn fault maps (seeds), same accuracies.
//!
//! The references below are the pre-campaign driver bodies, replayed through
//! the machinery they were thin wrappers over (`run_fault_rate_cells` for
//! the retraining drivers, the `vulnerability` sweep functions for the
//! Figure 5 drivers) — that machinery is kept in-tree exactly as the
//! reference for these tests. Coverage spans both backends: the retraining
//! drivers run on the FloatBackend, the Figure 5 drivers evaluate through
//! the faulty SystolicBackend. Every comparison runs at 1 and at 4 rayon
//! workers — results must not depend on worker count.
//!
//! This file is the only place the expected deprecation warnings are
//! silenced.
#![allow(deprecated)]

use falvolt::experiment::{
    array_size_experiment, bit_position_experiment, convergence_experiment, faulty_pe_experiment,
    mitigation_comparison, run_fault_rate_cells, threshold_sweep, ArraySizeReport,
    BitPositionReport, ConvergenceReport, DatasetKind, ExperimentContext, ExperimentScale,
    FaultyPeReport, MitigationComparisonReport, MitigationRow, SweepCell, ThresholdSweepReport,
    ThresholdSweepRow,
};
use falvolt::mitigation::{MitigationOutcome, MitigationStrategy, Mitigator, RetrainConfig};
use falvolt::vulnerability;
use proptest::prelude::*;
use std::sync::{Mutex, OnceLock};

/// One shared trained context: preparing it trains the Tiny baseline once
/// for the whole file; the mutex serialises the drivers (which mutate and
/// restore the context's network).
fn ctx() -> &'static Mutex<ExperimentContext> {
    static CTX: OnceLock<Mutex<ExperimentContext>> = OnceLock::new();
    CTX.get_or_init(|| {
        Mutex::new(
            ExperimentContext::prepare(DatasetKind::Mnist, ExperimentScale::Tiny, 42)
                .expect("equivalence context must prepare"),
        )
    })
}

/// Runs `f` under a fixed rayon worker count (cleared on drop, even on
/// panic) — the override is process-global, and every computation under
/// test is worker-count-independent, which is exactly the invariant here.
fn with_workers<T>(workers: usize, f: impl FnOnce() -> T) -> T {
    struct ClearOverride;
    impl Drop for ClearOverride {
        fn drop(&mut self) {
            rayon::set_thread_count_override(0);
        }
    }
    let _guard = ClearOverride;
    rayon::set_thread_count_override(workers);
    f()
}

// ---------------------------------------------------------------------------
// Pre-redesign reference drivers
// ---------------------------------------------------------------------------

fn reference_threshold_sweep(
    ctx: &mut ExperimentContext,
    thresholds: &[f32],
    fault_rates: &[f64],
    epochs: usize,
) -> ThresholdSweepReport {
    let mitigator = Mitigator::new(ctx.classes(), RetrainConfig::paper_like());
    let rows = run_fault_rate_cells(
        ctx,
        fault_rates,
        |seed, rate| seed ^ rate.to_bits(),
        thresholds,
        |cell, fault_rate, fault_map, &threshold| {
            let SweepCell {
                mut network,
                train,
                test,
            } = cell;
            let outcome = mitigator.run(
                &mut network,
                fault_map,
                train,
                test,
                MitigationStrategy::FaPIT { epochs, threshold },
            )?;
            Ok(ThresholdSweepRow {
                threshold,
                fault_rate,
                accuracy: outcome.final_accuracy,
            })
        },
    )
    .expect("reference threshold sweep");
    ThresholdSweepReport {
        dataset: ctx.kind().label().to_string(),
        baseline_accuracy: ctx.baseline_accuracy(),
        rows,
    }
}

fn reference_mitigation_comparison(
    ctx: &mut ExperimentContext,
    fault_rates: &[f64],
    epochs: usize,
) -> MitigationComparisonReport {
    let mitigator = Mitigator::new(ctx.classes(), RetrainConfig::paper_like());
    let strategies = [
        MitigationStrategy::FaP,
        MitigationStrategy::fapit(epochs),
        MitigationStrategy::falvolt(epochs),
    ];
    let rows = run_fault_rate_cells(
        ctx,
        fault_rates,
        |seed, rate| seed ^ rate.to_bits().rotate_left(13),
        &strategies,
        |cell, fault_rate, fault_map, &strategy| {
            let SweepCell {
                mut network,
                train,
                test,
            } = cell;
            let outcome = mitigator.run(&mut network, fault_map, train, test, strategy)?;
            Ok(MitigationRow {
                fault_rate,
                strategy: outcome.strategy.clone(),
                accuracy: outcome.final_accuracy,
                thresholds: outcome.thresholds.clone(),
            })
        },
    )
    .expect("reference mitigation comparison");
    MitigationComparisonReport {
        dataset: ctx.kind().label().to_string(),
        baseline_accuracy: ctx.baseline_accuracy(),
        rows,
    }
}

fn reference_convergence(
    ctx: &mut ExperimentContext,
    fault_rate: f64,
    epochs: usize,
) -> ConvergenceReport {
    let mitigator = Mitigator::new(ctx.classes(), RetrainConfig::paper_like());
    let strategies = [
        MitigationStrategy::fapit(epochs),
        MitigationStrategy::falvolt(epochs),
    ];
    let mut outcomes: Vec<MitigationOutcome> = run_fault_rate_cells(
        ctx,
        &[fault_rate],
        |seed, _| seed ^ 0xF168,
        &strategies,
        |cell, _, fault_map, &strategy| {
            let SweepCell {
                mut network,
                train,
                test,
            } = cell;
            mitigator.run(&mut network, fault_map, train, test, strategy)
        },
    )
    .expect("reference convergence");
    let falvolt = outcomes.pop().expect("two strategy cells");
    let fapit = outcomes.pop().expect("two strategy cells");
    ConvergenceReport {
        dataset: ctx.kind().label().to_string(),
        fault_rate,
        baseline_accuracy: ctx.baseline_accuracy(),
        fapit: fapit.history,
        falvolt: falvolt.history,
    }
}

fn reference_bit_position(
    ctx: &mut ExperimentContext,
    bits: &[u32],
    faulty_pes: usize,
) -> BitPositionReport {
    ctx.restore_baseline().expect("restore");
    let config = ctx.scale().vulnerability_config();
    let systolic = *ctx.systolic_config();
    let caches = ctx.caches().clone();
    let test = ctx.test_batches().to_vec();
    let series = vulnerability::bit_position_sweep(
        ctx.network_mut(),
        systolic,
        &test,
        bits,
        faulty_pes,
        &config,
        &caches,
    )
    .expect("reference bit-position sweep");
    BitPositionReport {
        dataset: ctx.kind().label().to_string(),
        series,
    }
}

fn reference_faulty_pe(ctx: &mut ExperimentContext, pe_counts: &[usize]) -> FaultyPeReport {
    ctx.restore_baseline().expect("restore");
    let config = ctx.scale().vulnerability_config();
    let systolic = *ctx.systolic_config();
    let caches = ctx.caches().clone();
    let test = ctx.test_batches().to_vec();
    let series = vulnerability::faulty_pe_sweep(
        ctx.network_mut(),
        systolic,
        &test,
        pe_counts,
        &config,
        &caches,
    )
    .expect("reference faulty-PE sweep");
    FaultyPeReport {
        dataset: ctx.kind().label().to_string(),
        baseline_accuracy: ctx.baseline_accuracy(),
        series,
    }
}

fn reference_array_size(
    ctx: &mut ExperimentContext,
    sizes: &[usize],
    faulty_pes: usize,
) -> ArraySizeReport {
    ctx.restore_baseline().expect("restore");
    let config = ctx.scale().vulnerability_config();
    let caches = ctx.caches().clone();
    let test = ctx.test_batches().to_vec();
    let series = vulnerability::array_size_sweep(
        ctx.network_mut(),
        sizes,
        &test,
        faulty_pes,
        &config,
        &caches,
    )
    .expect("reference array-size sweep");
    ArraySizeReport {
        dataset: ctx.kind().label().to_string(),
        faulty_pes,
        series,
    }
}

// ---------------------------------------------------------------------------
// Retraining drivers (FloatBackend cells)
// ---------------------------------------------------------------------------

#[test]
fn threshold_sweep_wrapper_is_bit_identical_at_1_and_4_workers() {
    let mut ctx = ctx()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let (thresholds, rates, epochs) = (vec![0.6f32, 1.0], vec![0.35f64], 2usize);
    let reference = reference_threshold_sweep(&mut ctx, &thresholds, &rates, epochs);
    for workers in [1usize, 4] {
        let wrapped = with_workers(workers, || {
            threshold_sweep(&mut ctx, &thresholds, &rates, epochs).unwrap()
        });
        assert_eq!(
            wrapped, reference,
            "threshold_sweep diverged at {workers} workers"
        );
    }
}

#[test]
fn mitigation_comparison_wrapper_is_bit_identical_at_1_and_4_workers() {
    let mut ctx = ctx()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let (rates, epochs) = (vec![0.30f64], 2usize);
    let reference = reference_mitigation_comparison(&mut ctx, &rates, epochs);
    for workers in [1usize, 4] {
        let wrapped = with_workers(workers, || {
            mitigation_comparison(&mut ctx, &rates, epochs).unwrap()
        });
        assert_eq!(
            wrapped, reference,
            "mitigation_comparison diverged at {workers} workers"
        );
    }
}

#[test]
fn convergence_wrapper_is_bit_identical_at_1_and_4_workers() {
    let mut ctx = ctx()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let (rate, epochs) = (0.30f64, 2usize);
    let reference = reference_convergence(&mut ctx, rate, epochs);
    for workers in [1usize, 4] {
        let wrapped = with_workers(workers, || {
            convergence_experiment(&mut ctx, rate, epochs).unwrap()
        });
        assert_eq!(
            wrapped, reference,
            "convergence_experiment diverged at {workers} workers"
        );
    }
}

// ---------------------------------------------------------------------------
// Figure 5 drivers (faulty SystolicBackend cells), proptested over the
// sweep parameters
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    #[test]
    fn bit_position_wrapper_is_bit_identical(faulty_pes in 1usize..9, high_bit in 10u32..16) {
        let mut ctx = ctx().lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let bits = vec![0, high_bit];
        let reference = reference_bit_position(&mut ctx, &bits, faulty_pes);
        for workers in [1usize, 4] {
            let wrapped = with_workers(workers, || {
                bit_position_experiment(&mut ctx, &bits, faulty_pes).unwrap()
            });
            prop_assert_eq!(
                &wrapped,
                &reference,
                "bit_position_experiment diverged at {} workers",
                workers
            );
        }
    }

    #[test]
    fn faulty_pe_wrapper_is_bit_identical(count in 1usize..33) {
        let mut ctx = ctx().lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let counts = vec![0, count];
        let reference = reference_faulty_pe(&mut ctx, &counts);
        for workers in [1usize, 4] {
            let wrapped = with_workers(workers, || {
                faulty_pe_experiment(&mut ctx, &counts).unwrap()
            });
            prop_assert_eq!(
                &wrapped,
                &reference,
                "faulty_pe_experiment diverged at {} workers",
                workers
            );
        }
    }

    #[test]
    fn array_size_wrapper_is_bit_identical(faulty_pes in 1usize..6, large in 3usize..5) {
        let mut ctx = ctx().lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        // 4x4 vs 12x12 / 16x16: distinct grids exercise the per-config
        // scenario grouping of the campaign's evaluation fan-out.
        let sizes = vec![4, large * 4];
        let reference = reference_array_size(&mut ctx, &sizes, faulty_pes);
        for workers in [1usize, 4] {
            let wrapped = with_workers(workers, || {
                array_size_experiment(&mut ctx, &sizes, faulty_pes).unwrap()
            });
            prop_assert_eq!(
                &wrapped,
                &reference,
                "array_size_experiment diverged at {} workers",
                workers
            );
        }
    }
}
