//! Chaos-injection suite (compiled under `--features chaos` only): drive
//! campaigns with deterministic seed-driven panics, errors and stragglers
//! and assert the resilience contract — zero process aborts, injected cells
//! come back `Failed` (or recover under retry), and every untouched cell is
//! bit-identical to a chaos-free run.
#![cfg(feature = "chaos")]

use falvolt::campaign::{Axis, Campaign, CellStatus, RetryPolicy, RunBudget};
use falvolt::chaos::{ChaosAction, ChaosPlan};
use falvolt::experiment::{DatasetKind, ExperimentContext, ExperimentScale};
use proptest::prelude::*;
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

fn ctx() -> &'static Mutex<ExperimentContext> {
    static CTX: OnceLock<Mutex<ExperimentContext>> = OnceLock::new();
    CTX.get_or_init(|| {
        Mutex::new(
            ExperimentContext::prepare(DatasetKind::Mnist, ExperimentScale::Tiny, 42)
                .expect("chaos context must prepare"),
        )
    })
}

fn with_workers<T>(workers: usize, f: impl FnOnce() -> T) -> T {
    struct ClearOverride;
    impl Drop for ClearOverride {
        fn drop(&mut self) {
            rayon::set_thread_count_override(0);
        }
    }
    let _guard = ClearOverride;
    rayon::set_thread_count_override(workers);
    f()
}

fn plan(ctx: &mut ExperimentContext, seed: u64) -> Campaign<'_> {
    Campaign::new(ctx)
        .axis(Axis::FaultyPes(vec![0, 2, 4, 6, 8, 12]))
        .scenarios_per_cell(2)
        .seed(seed)
}

const MAX_ATTEMPTS: usize = 2;

/// `true` when the chaos plan makes the given attempt at `cell` fail
/// (panic or error — a Slow action only delays).
fn attempt_fails(chaos: &ChaosPlan, cell: usize, attempt: usize) -> bool {
    matches!(
        chaos.action(cell, attempt),
        ChaosAction::Panic | ChaosAction::Error
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    #[test]
    fn chaos_disturbs_exactly_the_injected_cells(
        seed in 0u64..500,
        heavy in prop_oneof![Just(false), Just(true)],
        workers in prop_oneof![Just(1usize), Just(4usize)],
    ) {
        // The ISSUE's two operating points: a 5% and a 25% injection rate,
        // split between panics and typed errors.
        let rate = if heavy { 0.25 } else { 0.05 };
        let chaos = ChaosPlan::new(seed).panic_rate(rate / 2.0).error_rate(rate / 2.0);
        let mut guard = ctx().lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let ctx = &mut *guard;
        with_workers(workers, || {
            let clean = plan(ctx, seed).run().unwrap();
            let run = plan(ctx, seed)
                .chaos(chaos)
                .retry(RetryPolicy::attempts(MAX_ATTEMPTS).backoff(Duration::ZERO, Duration::ZERO))
                .run()
                .unwrap();
            assert_eq!(run.len(), clean.len());
            for (cell, (hit, miss)) in run.cells().iter().zip(clean.cells()).enumerate() {
                let doomed = (1..=MAX_ATTEMPTS).all(|a| attempt_fails(&chaos, cell, a));
                if doomed {
                    assert!(
                        hit.status.is_failed(),
                        "cell {cell} was injected on every attempt and must fail"
                    );
                    assert_eq!(hit.accuracy, 0.0);
                    assert_eq!(hit.scenarios, 0);
                    if let CellStatus::Failed { attempts, .. } = &hit.status {
                        assert_eq!(*attempts, MAX_ATTEMPTS);
                    }
                } else {
                    // Some attempt ran clean: the cell must be bit-identical
                    // to the chaos-free run, caches quarantined or not.
                    assert_eq!(
                        hit, miss,
                        "cell {cell} was not (terminally) injected and must match the clean run"
                    );
                }
            }
        });
    }
}

#[test]
fn panic_only_chaos_cannot_abort_the_process() {
    // A high panic rate across both worker pools: every panic must be
    // caught, quarantined and recorded — the process lives, the table is
    // full-length.
    let chaos = ChaosPlan::new(99).panic_rate(0.8);
    let mut guard = ctx()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let ctx = &mut *guard;
    let run = plan(ctx, 99).chaos(chaos).run().unwrap();
    assert_eq!(run.len(), 6);
    assert_eq!(run.completed() + run.failed(), 6);
    for (cell, result) in run.cells().iter().enumerate() {
        let injected = attempt_fails(&chaos, cell, 1);
        assert_eq!(result.status.is_failed(), injected);
        if let CellStatus::Failed { cause, .. } = &result.status {
            assert!(cause.message().starts_with("falvolt-chaos:"));
        }
    }
    // The context is still usable after heavy quarantine: a clean follow-up
    // run completes every cell.
    let after = plan(ctx, 99).run().unwrap();
    assert_eq!(after.completed(), 6);
}

#[test]
fn stragglers_meet_deadlines_without_failing_cells() {
    // Slow workers + a tight deadline: cells either complete or are skipped
    // by the deadline — a straggler must never be misreported as failed.
    let chaos = ChaosPlan::new(5).slow(1.0, Duration::from_millis(30));
    let mut guard = ctx()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let ctx = &mut *guard;
    let run = plan(ctx, 5)
        .chaos(chaos)
        .checkpoint_every(1)
        .budget(RunBudget::unlimited().deadline(Duration::from_millis(40)))
        .run()
        .unwrap();
    assert_eq!(run.len(), 6);
    assert_eq!(run.failed(), 0);
    assert!(
        run.skipped() > 0,
        "a 30ms straggler per 1-cell wave must blow a 40ms deadline"
    );
}
