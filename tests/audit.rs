//! Exercises the runtime mint/cache-audit layer (`--features audit`).
//!
//! The static pass (`falvolt-tidy`) checks the *preconditions* of the
//! "id equality certifies byte equality" contract; these tests drive the
//! `audit` feature's dynamic checks: the global id → fingerprint registry,
//! the fulfil-twice collision detection in the shared caches, and the
//! `import_parameters` id-stability assertions — plus real inference
//! traffic with every assertion armed.

#![cfg(feature = "audit")]

use falvolt_snn::config::ArchitectureConfig;
use falvolt_snn::sweep_cache::{SweepCache, SweepDecision};
use falvolt_systolic::{CacheDecision, ProductCache};
use falvolt_tensor::{audit, Tensor};
use std::sync::Arc;

fn tensor(data: &[f32]) -> Tensor {
    Tensor::from_vec(vec![data.len()], data.to_vec()).expect("shape matches data")
}

#[test]
fn content_id_is_stable_until_mutation_and_reminted_after() {
    let mut t = tensor(&[1.0, 2.0, 3.0]);
    let before = t.content_id();
    // Re-observing an unchanged tensor is fine and keeps the id.
    assert_eq!(t.content_id(), before);
    let clone = t.clone();
    assert_eq!(clone.content_id(), before, "clones share bytes, so the id");
    // A mutable access re-mints: the old id stays bound to the old bytes in
    // the registry, the new bytes get a new id — no collision, no panic.
    t.data_mut()[0] = -1.0;
    let after = t.content_id();
    assert_ne!(after, before, "mutation must re-mint the content id");
    // The clone still observes the old id over the old bytes.
    assert_eq!(clone.content_id(), before);
    assert!(audit::observed() >= 2, "both generations are registered");
}

#[test]
fn a_forged_id_over_different_bytes_panics() {
    // Simulate the bug the audit exists for: the same id certifying two
    // different buffers (a deserializer or unsafe path bypassing the mint).
    let id = u64::MAX - 101;
    audit::observe(id, &[1.0, 2.0]);
    let outcome = std::panic::catch_unwind(|| audit::observe(id, &[2.0, 1.0]));
    assert!(outcome.is_err(), "mint bypass must be caught");
}

#[test]
fn product_cache_rejects_fulfil_twice_with_different_bytes() {
    let cache = ProductCache::new();
    let _ = cache.lookup(42);
    assert!(matches!(cache.lookup(42), CacheDecision::Compute));
    cache.fulfill(42, Arc::new(vec![1.0, 2.0]));
    // Byte-identical refulfilment (a quarantined worker's recompute) is
    // legal — the store discards it, the audit accepts it.
    cache.fulfill(42, Arc::new(vec![1.0, 2.0]));
    // Different bytes under the same key: fingerprint collision or an
    // impure compute function. The audit panics before the store decides.
    let outcome = std::panic::catch_unwind(|| cache.fulfill(42, Arc::new(vec![9.0])));
    assert!(outcome.is_err(), "divergent refulfilment must be caught");
}

#[test]
fn qweight_store_is_audited_separately_from_products() {
    let cache = ProductCache::new();
    let _ = cache.lookup_qweights(7);
    assert!(matches!(cache.lookup_qweights(7), CacheDecision::Compute));
    cache.fulfill_qweights(7, Arc::new(vec![3, -4]));
    // The product store may hold different bytes under the same key value —
    // the stores are distinct namespaces.
    let _ = cache.lookup(7);
    assert!(matches!(cache.lookup(7), CacheDecision::Compute));
    cache.fulfill(7, Arc::new(vec![0.5]));
    let outcome = std::panic::catch_unwind(|| cache.fulfill_qweights(7, Arc::new(vec![3, 4])));
    assert!(outcome.is_err());
}

#[test]
fn sweep_cache_audits_prefix_and_lowered_fulfilments() {
    let cache = SweepCache::new();
    let _ = cache.lookup_prefix(11);
    assert!(matches!(cache.lookup_prefix(11), SweepDecision::Compute));
    cache.fulfill_prefix(11, Arc::new(tensor(&[1.0, 0.0, 1.0])));
    cache.fulfill_prefix(11, Arc::new(tensor(&[1.0, 0.0, 1.0])));
    let bad = tensor(&[0.0, 0.0, 0.0]);
    let outcome = std::panic::catch_unwind(|| cache.fulfill_prefix(11, Arc::new(bad)));
    assert!(
        outcome.is_err(),
        "divergent prefix refulfilment must be caught"
    );
    // The lowered store is its own namespace: the same key with other bytes
    // is fine there.
    assert!(matches!(
        cache.lookup_lowered_eager(11),
        SweepDecision::Compute
    ));
    cache.fulfill_lowered(11, Arc::new(tensor(&[5.0])));
}

#[test]
fn import_parameters_keeps_ids_for_unchanged_values() {
    let mut network = ArchitectureConfig::tiny_test().build(3).expect("builds");
    let exported = network.export_parameters();
    let ids_before: Vec<u64> = network
        .params_mut()
        .iter()
        .map(|p| p.value().content_id())
        .collect();
    // A round-trip import of the identical values is a no-op: every
    // parameter keeps its id (the internal audit asserts this too).
    network.import_parameters(&exported).expect("imports");
    let ids_after: Vec<u64> = network
        .params_mut()
        .iter()
        .map(|p| p.value().content_id())
        .collect();
    assert_eq!(ids_before, ids_after, "no-op import must keep every id");
    // A changed value re-mints exactly that parameter's id.
    let mut changed = exported.clone();
    let bumped = changed[0].map(|v| v + 0.25);
    changed[0] = bumped;
    network.import_parameters(&changed).expect("imports");
    let ids_changed: Vec<u64> = network
        .params_mut()
        .iter()
        .map(|p| p.value().content_id())
        .collect();
    assert_ne!(ids_changed[0], ids_after[0], "changed bytes re-mint");
    assert_eq!(
        ids_changed[1..],
        ids_after[1..],
        "unchanged params keep ids"
    );
}

#[test]
fn inference_traffic_passes_with_every_assertion_armed() {
    // Real cached inference with the audit observing every id that
    // escapes to the caches: a false positive here would mean the hooks
    // fire on legal traffic. The id-keyed cache paths only activate with
    // a sweep cache installed (as campaign sweeps do), so install one and
    // evaluate twice — the repeat visit exercises the promote/fulfil
    // protocol too.
    use falvolt::SystolicBackend;
    use falvolt_snn::trainer::{evaluate, Batch};
    use falvolt_systolic::{FaultMap, SystolicConfig};
    use falvolt_tensor::init;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let mut network = ArchitectureConfig::tiny_test().build(17).expect("builds");
    let systolic = SystolicConfig::new(8, 8).expect("config");
    network.set_backend(SystolicBackend::shared(systolic, FaultMap::new(systolic)));
    network.set_sweep_cache(Some(Arc::new(SweepCache::new())));
    let mut rng = StdRng::seed_from_u64(6);
    let input = init::uniform(&[4, 1, 8, 8], 0.0, 0.5, &mut rng);
    let batch = Batch::new(input, vec![0, 1, 2, 3]).expect("batch");
    let observed_before = audit::observed();
    let first = evaluate(&mut network, std::slice::from_ref(&batch)).expect("evaluates");
    let second = evaluate(&mut network, std::slice::from_ref(&batch)).expect("evaluates");
    assert_eq!(first, second, "cached re-evaluation must be deterministic");
    assert!(
        audit::observed() > observed_before,
        "cached inference must route ids through the audit registry"
    );
}
